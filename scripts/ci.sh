#!/bin/sh
# CI gate: build, tests, then a --quick smoke of the JSON result
# pipeline — the emitted document must parse (the CLI's own --check
# re-reads it) and round-trip through the regression gate at zero
# tolerance. Run from anywhere; operates on the repository root.
#
# Usage: scripts/ci.sh [STAGE]
#
# With no argument every stage runs in order — the full local gate.
# Naming a stage runs just that section (what the GitHub Actions matrix
# fans out across jobs); $stages below is the one authoritative list.
set -eu

# Single source of truth for the stage list: both the usage string and
# the dispatch whitelist derive from it, so adding a stage in one place
# cannot silently drift from the other (the tune stage smoke-tests
# this by running an unknown stage name).
stages="build docs tests smoke trace compiled shard serve serve-soak tune audit bench baseline"

usage() { echo "usage: scripts/ci.sh [$(echo "$stages" | tr ' ' '|')]"; }

stage="${1:-all}"
stage_known=false
[ "$stage" = all ] && stage_known=true
for s in $stages; do
  [ "$stage" = "$s" ] && stage_known=true
done
if ! "$stage_known"; then
  echo "unknown stage '$stage'" >&2
  usage >&2
  exit 2
fi
want() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if want build; then
  echo "== build =="
  dune build @all
fi

if want docs; then
  echo "== docs =="
  # @doc needs odoc; build it where the tool exists, skip (loudly) where
  # it does not so the gate stays runnable on minimal images.
  if command -v odoc >/dev/null 2>&1; then
    dune build @doc @doc-private
  else
    echo "odoc not installed; skipping documentation build"
  fi
fi

if want tests; then
  echo "== tests =="
  dune runtest
fi

if want smoke; then
  echo "== run-all JSON smoke =="
  # Emit a quick baseline, then check the very same run against it: this
  # exercises the emitter, the parser, and the differ end to end, and
  # fails if the document stopped being byte-deterministic.
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --json "$tmp/exp.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --check "$tmp/exp.json" --tolerance 0.0

  # Parallel and sequential runs must produce identical bytes.
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --sequential \
    --json "$tmp/exp_seq.json"
  cmp "$tmp/exp.json" "$tmp/exp_seq.json"

  # Both register-backend scheduling paths must too: force every
  # amplitude loop through the chunked dispatch and compare bytes.
  OQSC_PAR_THRESHOLD=0 dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --json "$tmp/exp_par.json"
  cmp "$tmp/exp.json" "$tmp/exp_par.json"
fi

if want trace; then
  echo "== trace smoke =="
  # Tracing must be write-only: a traced run's gated JSON must match an
  # untraced baseline byte for byte, on the default, sequential, and
  # forced-chunked scheduling paths alike. Each emitted timeline must
  # also survive the structural linter (balanced per-track B/E spans,
  # nondecreasing timestamps, zero dropped events).
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e3 \
    --json "$tmp/e3.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e3 \
    --trace "$tmp/e3_trace.json" --json "$tmp/e3_traced.json"
  cmp "$tmp/e3.json" "$tmp/e3_traced.json"
  dune exec bin/oqsc_cli.exe -- trace-lint "$tmp/e3_trace.json"

  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e3 --sequential \
    --trace "$tmp/e3_trace_seq.json" --json "$tmp/e3_traced_seq.json"
  cmp "$tmp/e3.json" "$tmp/e3_traced_seq.json"
  dune exec bin/oqsc_cli.exe -- trace-lint "$tmp/e3_trace_seq.json"

  OQSC_PAR_THRESHOLD=0 dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --only e3 --trace "$tmp/e3_trace_par.json" --json "$tmp/e3_traced_par.json"
  cmp "$tmp/e3.json" "$tmp/e3_traced_par.json"
  dune exec bin/oqsc_cli.exe -- trace-lint "$tmp/e3_trace_par.json"
fi

if want compiled; then
  echo "== compiled engine smoke =="
  # The bytecode engine must be invisible in results: a --compiled run's
  # gated JSON must be byte-identical to the IR walker's, on the default
  # and the forced-chunked scheduling paths, and through the OQSC_COMPILED
  # env switch (the route harnesses without flags use). A traced compiled
  # run must leave the JSON untouched and emit a timeline that survives
  # the structural linter (it carries the vm.compile / vm.exec spans).
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --json "$tmp/walk.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --compiled \
    --json "$tmp/comp.json"
  cmp "$tmp/walk.json" "$tmp/comp.json"

  OQSC_PAR_THRESHOLD=0 dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --compiled --json "$tmp/comp_par.json"
  cmp "$tmp/walk.json" "$tmp/comp_par.json"

  OQSC_COMPILED=1 dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --json "$tmp/comp_env.json"
  cmp "$tmp/walk.json" "$tmp/comp_env.json"

  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e11 \
    --json "$tmp/walk_e11.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e11 --compiled \
    --trace "$tmp/comp_trace.json" --json "$tmp/comp_e11.json"
  cmp "$tmp/walk_e11.json" "$tmp/comp_e11.json"
  dune exec bin/oqsc_cli.exe -- trace-lint "$tmp/comp_trace.json"

  # The bytecode machine gallery must list, disassemble, and run.
  dune exec bin/oqsc_cli.exe -- vm list >/dev/null
  dune exec bin/oqsc_cli.exe -- vm disasm ldisj-shape >/dev/null
  printf 1101 | dune exec bin/oqsc_cli.exe -- vm run parity | grep -q reject
fi

if want shard; then
  echo "== shard + merge smoke =="
  # Three process-level shards of the quick run, merged back, must be
  # byte-identical to the unsharded document: the merge tool validates
  # the shard provenance fields, drops them, and reassembles the
  # experiment list in catalogue order.
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --json "$tmp/shard_full.json"
  for i in 0 1 2; do
    dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
      --shard "$i/3" --json "$tmp/shard_$i.json"
  done
  # Merge order must not matter.
  dune exec bin/oqsc_cli.exe -- merge "$tmp/shard_merged.json" \
    "$tmp/shard_2.json" "$tmp/shard_0.json" "$tmp/shard_1.json"
  cmp "$tmp/shard_full.json" "$tmp/shard_merged.json"

  # The space-audit k sweep shards the same way; the merged document
  # recomputes fit/verdict from the recombined rows and must match the
  # unsharded audit byte for byte.
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --json "$tmp/sa_full.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet \
    --shard 0/2 --json "$tmp/sa_0.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet \
    --shard 1/2 --json "$tmp/sa_1.json"
  dune exec bin/oqsc_cli.exe -- merge "$tmp/sa_merged.json" \
    "$tmp/sa_1.json" "$tmp/sa_0.json"
  cmp "$tmp/sa_full.json" "$tmp/sa_merged.json"

  # Malformed selections must fail non-zero with a usable message.
  ! dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --shard 3/3 2>/dev/null
  ! dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --shard 0/0 2>/dev/null
  ! dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --shard x/3 2>/dev/null
  ! dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e99 2>/dev/null
  # ... and so must an incomplete or duplicated shard set.
  ! dune exec bin/oqsc_cli.exe -- merge "$tmp/bad.json" \
    "$tmp/shard_0.json" "$tmp/shard_1.json" 2>/dev/null
  ! dune exec bin/oqsc_cli.exe -- merge "$tmp/bad.json" \
    "$tmp/shard_0.json" "$tmp/shard_0.json" "$tmp/shard_1.json" "$tmp/shard_2.json" 2>/dev/null
fi

if want serve; then
  echo "== serve protocol smoke =="
  # The served-payload contract (docs/PROTOCOL.md): a run/sweep payload
  # answered by the long-lived server must be byte-identical to the
  # one-shot CLI document at the same (quick, seed). bench-serve
  # strictly re-decodes every reply envelope, so this replay also fails
  # on any undocumented reply key or error code.
  mix=examples/serve_mix.ndjson

  # In-process replay: payloads out of the engine itself.
  dune exec bin/oqsc_cli.exe -- bench-serve "$mix" \
    --payload-dir "$tmp/payloads" >/dev/null
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e2 \
    --json "$tmp/serve_b.json"
  cmp "$tmp/payloads/b.json" "$tmp/serve_b.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e2 --seed 7 \
    --json "$tmp/serve_f.json"
  cmp "$tmp/payloads/f.json" "$tmp/serve_f.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --shard 0/5 \
    --json "$tmp/serve_e.json"
  cmp "$tmp/payloads/e.json" "$tmp/serve_e.json"

  # Socket transport: a background server, the same mix over frames,
  # clean shutdown via a shutdown request, identical payload bytes. The
  # compiled engine must be invisible in the served bytes too. The
  # server runs from the built binary directly so the backgrounded
  # process never contends for dune's build lock.
  dune build bin/oqsc_cli.exe
  _build/default/bin/oqsc_cli.exe serve --socket "$tmp/serve.sock" --compiled &
  serve_pid=$!
  for _ in $(seq 50); do [ -S "$tmp/serve.sock" ] && break; sleep 0.1; done
  [ -S "$tmp/serve.sock" ]
  dune exec bin/oqsc_cli.exe -- bench-serve "$mix" --socket "$tmp/serve.sock" \
    --repeat 2 --payload-dir "$tmp/payloads_sock" --shutdown
  wait "$serve_pid"
  [ ! -e "$tmp/serve.sock" ]
  for id in b e f; do
    cmp "$tmp/payloads_sock/$id.json" "$tmp/serve_$id.json"
  done

  # Telemetry must be write-only: the same socket replay with the
  # request log, the metrics file, and the trace recorder all active
  # must produce byte-identical payloads. The emitted streams must
  # survive their linters (log-lint checks the exact event schema and
  # seq/ts ordering; trace-lint checks span balance and flow-arrow
  # pairing), and the metrics file must expose the serve counters in
  # Prometheus text exposition format.
  _build/default/bin/oqsc_cli.exe serve --socket "$tmp/tel.sock" \
    --log "$tmp/tel_log.ndjson" --metrics-file "$tmp/tel.prom" \
    --trace "$tmp/tel_trace.json" &
  tel_pid=$!
  for _ in $(seq 50); do [ -S "$tmp/tel.sock" ] && break; sleep 0.1; done
  [ -S "$tmp/tel.sock" ]
  dune exec bin/oqsc_cli.exe -- bench-serve "$mix" --socket "$tmp/tel.sock" \
    --payload-dir "$tmp/payloads_tel" --shutdown >/dev/null
  wait "$tel_pid"
  for id in b e f; do
    cmp "$tmp/payloads_tel/$id.json" "$tmp/serve_$id.json"
  done
  dune exec bin/oqsc_cli.exe -- log-lint "$tmp/tel_log.ndjson"
  dune exec bin/oqsc_cli.exe -- trace-lint "$tmp/tel_trace.json"
  grep -q '^# TYPE serve_requests_total counter$' "$tmp/tel.prom"
  grep -q 'serve_request_latency_ms_bucket{le="+Inf"}' "$tmp/tel.prom"

  # NDJSON transport smoke: requests on stdin, one reply line each, a
  # shutdown request ends the process with exit 0.
  { cat "$mix"; echo '{"v":1,"id":"z","op":"shutdown"}'; } \
    | dune exec bin/oqsc_cli.exe -- serve > "$tmp/ndjson_replies"
  [ "$(wc -l < "$tmp/ndjson_replies")" -eq 8 ]
  ! grep -q '"ok":false' "$tmp/ndjson_replies"

  # Error discipline: malformed / unknown-version / unknown-experiment
  # lines draw error replies with the documented codes and never kill
  # the server (the shutdown afterwards must still be answered).
  printf '%s\n' \
    '{nope' \
    '{"v":9,"id":"v9","op":"ping"}' \
    '{"v":1,"id":"x","op":"run","exp":"e99"}' \
    '{"v":1,"id":"z","op":"shutdown"}' \
    | dune exec bin/oqsc_cli.exe -- serve > "$tmp/err_replies"
  grep -q '"code":"parse_error"' "$tmp/err_replies"
  grep -q '"code":"unsupported_version"' "$tmp/err_replies"
  grep -q '"code":"unknown_experiment"' "$tmp/err_replies"
  grep -q '"op":"shutdown"' "$tmp/err_replies"

  # The v2 metrics op: version-gated (a v1 request naming it draws
  # unknown_op), a barrier when accepted, and the reply payload is the
  # oqsc-metrics document.
  printf '%s\n' \
    '{"v":1,"id":"m1","op":"metrics"}' \
    '{"v":2,"id":"m2","op":"metrics"}' \
    '{"v":1,"id":"z","op":"shutdown"}' \
    | dune exec bin/oqsc_cli.exe -- serve > "$tmp/metrics_replies"
  grep -q '"code":"unknown_op"' "$tmp/metrics_replies"
  grep -q '"id":"m2","ok":true' "$tmp/metrics_replies"
  grep -q '"kind":"oqsc-metrics"' "$tmp/metrics_replies"

  # Backpressure: with threshold flushes disabled (batch > queue) the
  # second admission must be refused with queue_full.
  printf '%s\n' \
    '{"v":1,"id":"r1","op":"run","exp":"e2","quick":true}' \
    '{"v":1,"id":"r2","op":"run","exp":"e13","quick":true}' \
    '{"v":1,"id":"z","op":"shutdown"}' \
    | dune exec bin/oqsc_cli.exe -- serve --queue 1 --batch 4 > "$tmp/bp_replies"
  grep -q '"code":"queue_full"' "$tmp/bp_replies"
fi

if want serve-soak; then
  echo "== serve sustained-load soak =="
  # Concurrent-serving gate (docs/PROTOCOL.md § Concurrency): a
  # background server under 4 concurrent bench-serve connections must
  # complete the committed mix with strict reply decoding and
  # per-connection ordering, produce byte-identical payloads, and keep
  # the server-side p99 within a (deliberately loose) factor of the
  # committed baseline — machine variance is fine, a complexity
  # regression in the serving path is not.
  mix=examples/serve_mix.ndjson
  dune build bin/oqsc_cli.exe
  _build/default/bin/oqsc_cli.exe serve --socket "$tmp/soak.sock" --max-clients 8 \
    --log "$tmp/soak_log.ndjson" &
  soak_pid=$!
  for _ in $(seq 50); do [ -S "$tmp/soak.sock" ] && break; sleep 0.1; done
  [ -S "$tmp/soak.sock" ]
  # Early metrics scrape: one light replay against the live server
  # records the counter state before the heavy load, for the
  # monotonicity gate below (every bench-serve --json report embeds
  # the server's metrics snapshot, scraped via a v2 metrics request).
  dune exec bin/oqsc_cli.exe -- bench-serve "$mix" --socket "$tmp/soak.sock" \
    --json "$tmp/soak_mid.json" >/dev/null
  dune exec bin/oqsc_cli.exe -- bench-serve "$mix" --socket "$tmp/soak.sock" \
    --clients 4 --repeat 50 --payload-dir "$tmp/soak_payloads" \
    --json "$tmp/soak.json" --shutdown
  wait "$soak_pid"
  [ ! -e "$tmp/soak.sock" ]

  # The request log the server wrote under concurrent load must lint
  # clean after shutdown: exact event schema, gapless seq, ordered ts.
  dune exec bin/oqsc_cli.exe -- log-lint "$tmp/soak_log.ndjson"

  # Metrics gates over the two scrapes of the same server process.
  metric() { # FILE NAME -> integer counter value
    awk -v pat="\"name\": \"$2\"" '
      index($0, pat) { f = 1 }
      f && index($0, "\"value\":") { gsub(/[^0-9]/, "", $0); print; exit }
    ' "$1"
  }
  # 1. Monotonicity: no serve counter may move backwards between the
  #    early scrape and the end-of-soak scrape.
  for c in serve_requests_total serve_replies_ok_total \
           serve_replies_error_total serve_rejected_total \
           serve_dropped_total serve_flushes_total; do
    early="$(metric "$tmp/soak_mid.json" "$c")"
    final="$(metric "$tmp/soak.json" "$c")"
    if [ -z "$early" ] || [ -z "$final" ]; then
      echo "serve-soak: counter $c missing from a metrics scrape" >&2
      exit 1
    fi
    if [ "$early" -gt "$final" ]; then
      echo "serve-soak: counter $c went backwards ($early -> $final)" >&2
      exit 1
    fi
  done
  # 2. Accounting identity at both scrapes: every request the server
  #    ever saw is exactly one of replied-ok / replied-error /
  #    rejected / dropped (docs/PROTOCOL.md, metrics payload).
  for f in "$tmp/soak_mid.json" "$tmp/soak.json"; do
    req="$(metric "$f" serve_requests_total)"
    sum=$(( $(metric "$f" serve_replies_ok_total) \
          + $(metric "$f" serve_replies_error_total) \
          + $(metric "$f" serve_rejected_total) \
          + $(metric "$f" serve_dropped_total) ))
    if [ "$req" -ne "$sum" ]; then
      echo "serve-soak: accounting identity broken in $f ($req != $sum)" >&2
      exit 1
    fi
  done

  # Payload bytes out of a loaded concurrent server = one-shot CLI bytes.
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e2 \
    --json "$tmp/soak_b.json"
  cmp "$tmp/soak_payloads/b.json" "$tmp/soak_b.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet --only e2 --seed 7 \
    --json "$tmp/soak_f.json"
  cmp "$tmp/soak_payloads/f.json" "$tmp/soak_f.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --shard 0/5 \
    --json "$tmp/soak_e.json"
  cmp "$tmp/soak_payloads/e.json" "$tmp/soak_e.json"

  # Server-side p99 gate against the committed dated baseline.
  # Re-record with scripts/ci.sh serve-soak's bench-serve line and
  # commit a new dated file after intentional serving-path changes.
  p99() { awk -F: '/"p99_ms"/ { gsub(/[ ",]/, "", $2); print $2; exit }' "$1"; }
  fresh="$(p99 "$tmp/soak.json")"
  base="$(p99 BENCH_SERVE_2026-08-08.json)"
  echo "soak p99_ms: fresh=$fresh baseline=$base (gate: fresh <= 25x baseline)"
  # A missing or non-positive sample means the stats payload or the
  # baseline lost its p99_ms key — that is a gate failure, not a pass
  # (empty strings would otherwise compare 0 <= 0 and wave it through).
  if [ -z "$fresh" ] || [ -z "$base" ]; then
    echo "serve-soak: p99_ms missing (fresh='$fresh' baseline='$base')" >&2
    exit 1
  fi
  awk -v f="$fresh" -v b="$base" \
    'BEGIN { exit !(f + 0 > 0 && b + 0 > 0 && f + 0 <= 25 * b) }'
fi

if want tune; then
  echo "== tune profile pipeline =="
  # Stage-dispatch self-test: an unknown stage must fail fast with exit
  # code 2 and the usage line, never fall through to the full gate.
  set +e
  bogus_out="$(sh scripts/ci.sh bogus-stage 2>&1)"
  bogus_rc=$?
  set -e
  [ "$bogus_rc" -eq 2 ]
  echo "$bogus_out" | grep -q '^usage: scripts/ci.sh'

  # A fresh quick sweep must emit a profile that parses and is
  # self-consistent against its own telemetry — and so must the
  # committed dated profile.
  dune exec bin/oqsc_cli.exe -- tune --quick --quiet --json "$tmp/tune.json"
  dune exec bin/oqsc_cli.exe -- tune-lint "$tmp/tune.json"
  dune exec bin/oqsc_cli.exe -- tune-lint TUNE_2026-08-08.json

  # The profile contract (docs/SCHEMA.md): profiles move scheduling
  # only, so ANY valid profile must leave gated bytes untouched.
  # Compare run-all and space-audit documents against defaults under
  # (a) the fresh sweep's profile via --tune-profile, (b) the committed
  # profile via the OQSC_TUNE_PROFILE environment route, and (c) a
  # handwritten extreme profile (threshold 1, grain 1, domain cap 2)
  # that drags every kernel onto the chunked path.
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --json "$tmp/tune_ra_default.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet \
    --json "$tmp/tune_sa_default.json"

  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --tune-profile "$tmp/tune.json" --json "$tmp/tune_ra_fresh.json"
  cmp "$tmp/tune_ra_default.json" "$tmp/tune_ra_fresh.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet \
    --tune-profile "$tmp/tune.json" --json "$tmp/tune_sa_fresh.json"
  cmp "$tmp/tune_sa_default.json" "$tmp/tune_sa_fresh.json"

  OQSC_TUNE_PROFILE=TUNE_2026-08-08.json dune exec bin/oqsc_cli.exe -- \
    run-all --quick --quiet --json "$tmp/tune_ra_env.json"
  cmp "$tmp/tune_ra_default.json" "$tmp/tune_ra_env.json"
  OQSC_TUNE_PROFILE=TUNE_2026-08-08.json dune exec bin/oqsc_cli.exe -- \
    space-audit --quick --quiet --json "$tmp/tune_sa_env.json"
  cmp "$tmp/tune_sa_default.json" "$tmp/tune_sa_env.json"

  cat > "$tmp/tune_extreme.json" <<'EOF'
{"domains": 2, "kernels": [
  {"grain": 1, "name": "diagonal", "threshold": 1},
  {"grain": 1, "name": "general", "threshold": 1},
  {"grain": 1, "name": "map_chunks", "threshold": 1},
  {"grain": 1, "name": "real", "threshold": 1},
  {"grain": 1, "name": "tlayer", "threshold": 1}],
 "kind": "oqsc-tune", "version": 1}
EOF
  dune exec bin/oqsc_cli.exe -- tune-lint "$tmp/tune_extreme.json"
  dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
    --tune-profile "$tmp/tune_extreme.json" --json "$tmp/tune_ra_extreme.json"
  cmp "$tmp/tune_ra_default.json" "$tmp/tune_ra_extreme.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet \
    --tune-profile "$tmp/tune_extreme.json" --json "$tmp/tune_sa_extreme.json"
  cmp "$tmp/tune_sa_default.json" "$tmp/tune_sa_extreme.json"

  # Rejection discipline: a profile with an unknown key must fail both
  # the linter and any command asked to load it, before anything runs.
  sed 's/"kind"/"surprise": 1, "kind"/' "$tmp/tune_extreme.json" \
    > "$tmp/tune_bad.json"
  ! dune exec bin/oqsc_cli.exe -- tune-lint "$tmp/tune_bad.json" 2>/dev/null
  ! dune exec bin/oqsc_cli.exe -- run-all --quick --quiet \
      --tune-profile "$tmp/tune_bad.json" 2>/dev/null
fi

if want audit; then
  echo "== space-audit gate =="
  # Exits non-zero unless the fitted classical exponent lands in the
  # n^(1/3) band and the quantum data prefers the logarithmic model; the
  # emitted document must also be byte-stable across runs.
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --json "$tmp/audit.json"
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --json "$tmp/audit2.json"
  cmp "$tmp/audit.json" "$tmp/audit2.json"
  # --timing adds wall_ms telemetry (and nothing else): the timed
  # document must differ from the baseline, and stripping its wall_ms
  # lines (plus the comma they force onto the preceding line, since
  # sorted keys put wall_ms last in each object) must give back the
  # baseline bytes exactly.
  dune exec bin/oqsc_cli.exe -- space-audit --quick --quiet --timing \
    --json "$tmp/audit_timed.json"
  ! cmp -s "$tmp/audit.json" "$tmp/audit_timed.json"
  awk '{ if ($0 ~ /"wall_ms"/) { sub(/,$/, "", prev); next }
         if (have) print prev; prev = $0; have = 1 }
       END { if (have) print prev }' \
    "$tmp/audit_timed.json" > "$tmp/audit_stripped.json"
  cmp "$tmp/audit.json" "$tmp/audit_stripped.json"
fi

if want bench; then
  echo "== bench JSON smoke =="
  # One cheap kernel group; wall-clock varies, so gate only the shape
  # (names present, document parses) with a very loose tolerance.
  dune exec bench/main.exe -- --quick --no-tables --only e2 --json "$tmp/bench.json"
  dune exec bench/main.exe -- --quick --no-tables --only e2 \
    --check "$tmp/bench.json" --tolerance 90

  # Sharded bench documents recombine: timings differ run to run, so
  # gate the merged document's kernel catalogue, not its numbers.
  dune exec bench/main.exe -- --quick --no-tables --only e2,e5,e13 \
    --shard 0/2 --json "$tmp/bench_0.json"
  dune exec bench/main.exe -- --quick --no-tables --only e2,e5,e13 \
    --shard 1/2 --json "$tmp/bench_1.json"
  dune exec bin/oqsc_cli.exe -- merge "$tmp/bench_merged.json" \
    "$tmp/bench_1.json" "$tmp/bench_0.json"
  dune exec bench/main.exe -- --quick --no-tables --only e2,e5,e13 \
    --check "$tmp/bench_merged.json" --tolerance 10000
fi

if want baseline; then
  echo "== bench baseline check =="
  # Gate the full kernel set against the committed dated baseline. The
  # tolerance is deliberately loose (timings are machine-dependent); what
  # this really pins is the kernel catalogue — a renamed or vanished
  # kernel fails regardless of tolerance. Re-record and commit a new
  # dated file after intentional kernel changes (see EXPERIMENTS.md).
  dune exec bench/main.exe -- --no-tables \
    --check BENCH_2026-08-05.json --tolerance 90
fi

echo "== ci $stage OK =="
