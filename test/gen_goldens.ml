(* Regenerate the committed disassembler listings in test/golden/.
   Run after an intentional encoding or disassembly format change:

     dune exec test/gen_goldens.exe -- test/golden

   then review the diff and commit.  The listings must stay in sync
   with lowered_golden_circuit and machine_gallery in test_vm.ml. *)

open Machine
open Circuit

let machine_gallery =
  [
    ("parity", Program.parity);
    ("run_length_equal", Program.run_length_equal ~width:5);
    ("fingerprint_eq", Program.fingerprint_eq ~p:17 ~t:3);
    ("ldisj_shape", Program.ldisj_shape ~width:7);
    ("beacon", Program.beacon);
  ]

let lowered_golden_circuit () =
  Lower.to_basis
    (Circ.of_gates ~nqubits:3
       [
         Gate.H 0;
         Gate.T 1;
         Gate.Cz (0, 1);
         Gate.Ccx { c1 = 0; c2 = 1; target = 2 };
         Gate.X 2;
       ])

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  let write name text =
    let path = Filename.concat dir (name ^ ".disasm") in
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
    Printf.printf "wrote %s\n" path
  in
  List.iter
    (fun (name, p) -> write name (Vm.Mcode.disasm (Vm.Mcode.compile p)))
    machine_gallery;
  write "lowered_circuit"
    (Vm.Qcode.disasm (Vm.Qcode.compile (lowered_golden_circuit ())))
