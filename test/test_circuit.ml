(* Tests for the circuit IR, the exact lowering to {H, T, CNOT}, the
   Definition 2.3 wire format and the §3.2 structured operators. *)

open Mathx
open Quantum
open Circuit

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ IR *)

let test_gate_wellformed () =
  check "h ok" true (Gate.well_formed (Gate.H 0));
  check "negative qubit" false (Gate.well_formed (Gate.H (-1)));
  check "cnot same qubit" false
    (Gate.well_formed (Gate.Cnot { control = 1; target = 1 }));
  check "ccx distinct" true
    (Gate.well_formed (Gate.Ccx { c1 = 0; c2 = 1; target = 2 }));
  check "ccx duplicate" false
    (Gate.well_formed (Gate.Ccx { c1 = 0; c2 = 0; target = 2 }));
  check "mcz empty" false (Gate.well_formed (Gate.Mcz []));
  check "mcx duplicate control/target" false
    (Gate.well_formed (Gate.Mcx { controls = [ 0; 1 ]; target = 1 }))

let test_circ_append_and_guards () =
  let c = Circ.create ~nqubits:2 in
  Circ.add c (Gate.H 0);
  Circ.add c (Gate.Cnot { control = 0; target = 1 });
  check_int "length" 2 (Circ.length c);
  Alcotest.check_raises "budget exceeded"
    (Invalid_argument "Circ.add: gate H 2 exceeds qubit budget 2") (fun () ->
      Circ.add c (Gate.H 2));
  let c2 = Circ.create ~nqubits:2 in
  Circ.append c2 c;
  check_int "append copies gates" 2 (Circ.length c2);
  check "basis only" true (Circ.is_basis_only c)

let test_circ_growth () =
  (* Exercise the backing-array doubling. *)
  let c = Circ.create ~nqubits:1 in
  for _ = 1 to 100 do
    Circ.add c (Gate.T 0)
  done;
  check_int "100 gates" 100 (Circ.length c);
  check_int "count" 100 (Circ.count c (function Gate.T _ -> true | _ -> false))

(* --------------------------------------------------------------- run/sim *)

let test_run_matches_manual_state () =
  let c =
    Circ.of_gates ~nqubits:2
      [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]
  in
  let s = State.create 2 in
  Circ.run c s;
  Alcotest.(check (float 1e-9)) "bell P(00)" 0.5 (State.probability s 0);
  Alcotest.(check (float 1e-9)) "bell P(11)" 0.5 (State.probability s 3)

let test_structured_gates_semantics () =
  (* CCX acts as a Toffoli; MCZ flips the phase of |111...>. *)
  let c = Circ.of_gates ~nqubits:3 [ Gate.X 0; Gate.X 1; Gate.Ccx { c1 = 0; c2 = 1; target = 2 } ] in
  let s = State.create 3 in
  Circ.run c s;
  Alcotest.(check (float 1e-9)) "toffoli fired" 1.0 (State.probability s 7);
  let u = Circ.unitary (Circ.of_gates ~nqubits:2 [ Gate.Mcz [ 0; 1 ] ]) in
  check "mcz diag" true
    (Cplx.approx_equal (Unitary.get u 3 3) (Cplx.re (-1.0))
    && Cplx.approx_equal (Unitary.get u 0 0) Cplx.one)

(* ------------------------------------------------------------- lowering *)

let lowering_equiv gate nqubits =
  let structured = Circ.of_gates ~nqubits [ gate ] in
  let basis = Lower.to_basis structured in
  check
    (Format.asprintf "%a lowers to basis" Gate.pp gate)
    true
    (Circ.is_basis_only basis);
  check
    (Format.asprintf "%a equivalent" Gate.pp gate)
    true
    (Verify.equivalent ~reference:structured ~candidate:basis ())

let test_lower_single_qubit_macros () =
  lowering_equiv (Gate.Tdg 0) 1;
  lowering_equiv (Gate.S 0) 1;
  lowering_equiv (Gate.Sdg 0) 1;
  lowering_equiv (Gate.Z 0) 1;
  lowering_equiv (Gate.X 0) 1

let test_lower_two_qubit () =
  lowering_equiv (Gate.Cz (0, 1)) 2;
  lowering_equiv (Gate.Cz (1, 0)) 2

let test_lower_toffoli_exact () =
  let structured = Circ.of_gates ~nqubits:3 [ Gate.Ccx { c1 = 0; c2 = 1; target = 2 } ] in
  let basis = Lower.to_basis structured in
  check "toffoli uses no ancilla" true (Circ.nqubits basis = 3);
  (* The classic network has 4 T and 3 Tdg; Tdg = T^7 in the strict
     {H, T, CNOT} basis, so 4 + 3*7 = 25 T gates. *)
  check_int "25 T gates" 25
    (Circ.count basis (function Gate.T _ -> true | _ -> false));
  (* The standard network is exact including global phase: compare full
     unitaries without the phase quotient. *)
  check "exact matrix equality" true
    (Unitary.approx_equal (Circ.unitary structured) (Circ.unitary basis))

let test_lower_mcx_with_ancillas () =
  List.iter
    (fun controls ->
      let k = List.length controls in
      let target = k in
      let structured =
        Circ.of_gates ~nqubits:(k + 1) [ Gate.Mcx { controls; target } ]
      in
      let basis = Lower.to_basis structured in
      check
        (Printf.sprintf "mcx %d controls ancillas" k)
        true
        (Circ.nqubits basis = k + 1 + max 0 (k - 2));
      check
        (Printf.sprintf "mcx %d controls equivalent" k)
        true
        (Verify.equivalent ~reference:structured ~candidate:basis ()))
    [ [ 0 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 3 ] ]

let test_lower_mcz () =
  lowering_equiv (Gate.Mcz [ 0 ]) 1;
  lowering_equiv (Gate.Mcz [ 0; 1 ]) 2;
  lowering_equiv (Gate.Mcz [ 0; 1; 2 ]) 3

let test_lower_whole_circuit () =
  let structured =
    Circ.of_gates ~nqubits:4
      [
        Gate.H 0; Gate.H 1;
        Gate.X 0;
        Gate.Mcx { controls = [ 0; 1; 2 ]; target = 3 };
        Gate.X 0;
        Gate.Mcz [ 0; 1; 2; 3 ];
        Gate.S 2;
      ]
  in
  let basis = Lower.to_basis structured in
  check "basis only" true (Circ.is_basis_only basis);
  check "equivalent" true (Verify.equivalent ~reference:structured ~candidate:basis ())

let test_ancillas_needed () =
  let c = Circ.of_gates ~nqubits:6 [ Gate.Mcx { controls = [ 0; 1; 2; 3; 4 ]; target = 5 } ] in
  check_int "5 controls need 3" 3 (Lower.ancillas_needed c);
  let c2 = Circ.of_gates ~nqubits:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ] in
  check_int "basis needs none" 0 (Lower.ancillas_needed c2)

(* ------------------------------------------------------------ wire format *)

let test_wire_roundtrip () =
  let c =
    Circ.of_gates ~nqubits:3
      [ Gate.H 0; Gate.T 1; Gate.Cnot { control = 0; target = 2 }; Gate.H 2 ]
  in
  let wire = Wire.emit c in
  let parsed = Wire.parse ~nqubits:3 wire in
  check "roundtrip" true (Circ.gates parsed = Circ.gates c);
  check_int "gate_count" 4 (Wire.gate_count wire)

let test_wire_identity_convention () =
  (* a = b with c = 2 denotes the identity and is dropped. *)
  let parsed = Wire.parse ~nqubits:2 "1#1#2#0#1#2" in
  check_int "identity dropped" 1 (Circ.length parsed)

let test_wire_rejects_garbage () =
  Alcotest.check_raises "truncated" (Invalid_argument "Wire.parse: truncated triple")
    (fun () -> ignore (Wire.parse ~nqubits:2 "1#2"));
  Alcotest.check_raises "bad field" (Invalid_argument "Wire.parse: malformed field")
    (fun () -> ignore (Wire.parse ~nqubits:2 "a#0#0"));
  Alcotest.check_raises "bad code" (Invalid_argument "Wire.parse: gate code out of range")
    (fun () -> ignore (Wire.parse ~nqubits:2 "0#1#7"));
  Alcotest.check_raises "non-basis emit rejected"
    (Invalid_argument "Wire.emit: circuit contains non-basis gates") (fun () ->
      ignore (Wire.emit (Circ.of_gates ~nqubits:1 [ Gate.X 0 ])))

(* --------------------------------------------------- structured operators *)

let test_ops_circuits_match_direct_application () =
  let rng = Rng.create 13 in
  let k = 1 in
  let lay = Ops.layout ~k in
  let nq = Ops.data_qubits lay in
  let x = Bitvec.random rng 4 and y = Bitvec.random rng 4 in
  let pairs =
    [
      ("u_k", Ops.u_k lay, Ops.apply_u_k lay);
      ("v_x", Ops.v_x lay x, Ops.apply_v lay x);
      ("w_y", Ops.w_y lay y, Ops.apply_w lay y);
      ("r_y", Ops.r_y lay y, Ops.apply_r lay y);
    ]
  in
  List.iter
    (fun (name, gates, direct) ->
      (* Start from a non-trivial state. *)
      let s = Ops.initial_state lay in
      State.apply_gate1 s Gates.t 0;
      State.apply_cnot s ~control:0 ~target:lay.Ops.h;
      let via_circuit = State.copy s in
      Circ.run (Circ.of_gates ~nqubits:nq gates) via_circuit;
      direct s;
      check (name ^ " circuit = direct") true (State.approx_equal s via_circuit))
    pairs

let test_s_k_is_minus_flip_zero () =
  (* The circuit builder realises S_k up to a global -1; as states the
     fidelity with the direct application must be 1. *)
  let lay = Ops.layout ~k:1 in
  let s_direct = Ops.initial_state lay in
  Ops.apply_s_k lay s_direct;
  let s_circ = Ops.initial_state lay in
  Circ.run (Circ.of_gates ~nqubits:(Ops.data_qubits lay) (Ops.s_k lay)) s_circ;
  Alcotest.(check (float 1e-9)) "same up to global phase" 1.0
    (State.fidelity s_direct s_circ)

let test_grover_step_is_grover_iteration () =
  (* V_x W_y V_x followed by the diffusion equals one textbook Grover
     iteration (up to global phase) for the conjunction oracle. *)
  let rng = Rng.create 29 in
  let k = 1 in
  let lay = Ops.layout ~k in
  let x = Bitvec.random rng 4 and y = Bitvec.random rng 4 in
  let s = Ops.initial_state lay in
  Circ.run
    (Circ.of_gates ~nqubits:(Ops.data_qubits lay) (Ops.grover_step lay ~x ~y ~z:x))
    s;
  let oracle = Grover.Oracle.conjunction x y in
  let reference = Grover.Iterate.prepare_uniform ~extra_qubits:2 oracle in
  Grover.Iterate.iteration oracle reference;
  Alcotest.(check (float 1e-9)) "fidelity 1" 1.0 (State.fidelity s reference)

let test_per_bit_builders_compose_to_whole () =
  let rng = Rng.create 57 in
  let lay = Ops.layout ~k:1 in
  let v = Bitvec.random rng 4 in
  let whole = Ops.v_x lay v in
  let per_bit =
    List.concat_map (fun i -> Ops.v_bit lay i) (Bitvec.ones v)
  in
  check "v_x = concat v_bit over ones" true (whole = per_bit)

let test_verify_detects_difference () =
  let a = Circ.of_gates ~nqubits:1 [ Gate.H 0 ] in
  let b = Circ.of_gates ~nqubits:1 [ Gate.T 0 ] in
  check "H != T" false (Verify.equivalent ~reference:a ~candidate:b ());
  let dirty = Circ.of_gates ~nqubits:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ] in
  (* Leaves the "ancilla" qubit 1 entangled: must be flagged as leak. *)
  let report = Verify.compare ~reference:(Circ.of_gates ~nqubits:1 [ Gate.H 0 ]) ~candidate:dirty () in
  check "ancilla leak detected" false report.Verify.equivalent;
  check "leak reported" true (report.Verify.ancilla_leak > 0.1)

let test_unitary_twelve_qubits () =
  (* The column-building construction must reach the documented 12-qubit
     cap (the dense per-gate product chain topped out at 10). *)
  let c =
    Circ.of_gates ~nqubits:12 [ Gate.H 0; Gate.Cnot { control = 0; target = 11 } ]
  in
  let u = Circ.unitary c in
  check_int "dim" 4096 (Unitary.dim u);
  let inv_sqrt2 = 1.0 /. sqrt 2.0 in
  let entry i j = (Unitary.get u i j).Cplx.re in
  Alcotest.(check (float 1e-12)) "u[0,0]" inv_sqrt2 (entry 0 0);
  Alcotest.(check (float 1e-12)) "u[2049,0]" inv_sqrt2 (entry 2049 0);
  Alcotest.(check (float 1e-12)) "u[0,1]" inv_sqrt2 (entry 0 1);
  Alcotest.(check (float 1e-12)) "u[2049,1]" (-.inv_sqrt2) (entry 2049 1);
  check "rejects 13 qubits" true
    (match Circ.unitary (Circ.create ~nqubits:13) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gate_unitary_guard () =
  check "budget guard" true
    (match Circ.gate_unitary ~nqubits:2 (Gate.H 2) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let u = Circ.gate_unitary ~nqubits:3 (Gate.Cnot { control = 0; target = 2 }) in
  check "embedded cnot unitary" true (Unitary.is_unitary u)

(* ----------------------------------------------------------- properties *)

let qcheck_tests =
  let open QCheck in
  (* Random circuits on 2..8 qubits drawing from every gate constructor. *)
  let arb_sized_circuit =
    let gen =
      let open Gen in
      int_range 2 8 >>= fun n ->
      let qubit = int_bound (n - 1) in
      let distinct2 =
        qubit >>= fun a ->
        int_bound (n - 2) >>= fun b ->
        let b = if b >= a then b + 1 else b in
        return (a, b)
      in
      (* Nonempty strict subset of the qubits, as a bitmask. *)
      let proper_mask = int_range 1 ((1 lsl n) - 2) in
      let qubits_of_mask m = List.filter (fun q -> m lsr q land 1 = 1) (List.init n Fun.id) in
      let gate1 ctor = map ctor qubit in
      let singles =
        [
          gate1 (fun q -> Gate.H q); gate1 (fun q -> Gate.T q);
          gate1 (fun q -> Gate.Tdg q); gate1 (fun q -> Gate.S q);
          gate1 (fun q -> Gate.Sdg q); gate1 (fun q -> Gate.X q);
          gate1 (fun q -> Gate.Z q);
        ]
      in
      let doubles =
        [
          map (fun (c, t) -> Gate.Cnot { control = c; target = t }) distinct2;
          map (fun (a, b) -> Gate.Cz (a, b)) distinct2;
          map (fun m -> Gate.Mcz (qubits_of_mask m)) (int_range 1 ((1 lsl n) - 1));
          (map (fun (m, t0) ->
               let controls = qubits_of_mask m in
               let outside = List.filter (fun q -> m lsr q land 1 = 0) (List.init n Fun.id) in
               let target = List.nth outside (t0 mod List.length outside) in
               Gate.Mcx { controls; target }))
            (pair proper_mask (int_bound (n - 1)));
        ]
      in
      let triples =
        if n < 3 then []
        else
          [
            (map (fun (a, (b0, c0)) ->
                 let b = if b0 >= a then b0 + 1 else b0 in
                 let c0 = if c0 >= min a b then c0 + 1 else c0 in
                 let c = if c0 >= max a b then c0 + 1 else c0 in
                 Gate.Ccx { c1 = a; c2 = b; target = c }))
              (pair qubit (pair (int_bound (n - 2)) (int_bound (n - 3))));
          ]
      in
      let arb_gate = oneof (singles @ doubles @ triples) in
      list_size (int_range 1 14) arb_gate >>= fun gates -> return (n, gates)
    in
    make ~print:(fun (n, gates) ->
        Format.asprintf "%a" Circ.pp (Circ.of_gates ~nqubits:n gates))
      gen
  in
  let arb_basis_gate =
    make
      Gen.(
        oneof
          [
            map (fun q -> Gate.H (q mod 3)) (int_bound 2);
            map (fun q -> Gate.T (q mod 3)) (int_bound 2);
            map
              (fun (c, t) ->
                let c = c mod 3 and t = t mod 3 in
                if c = t then Gate.H c
                else Gate.Cnot { control = c; target = t })
              (pair (int_bound 2) (int_bound 2));
          ])
  in
  [
    Test.make ~name:"run = per-gate dense chain = column unitary" ~count:40
      arb_sized_circuit
      (fun (n, gates) ->
        let c = Circ.of_gates ~nqubits:n gates in
        (* A varied but deterministic basis-state input. *)
        let j = List.length gates * 37 mod (1 lsl n) in
        let s_run = State.basis n j in
        Circ.run c s_run;
        let s_chain =
          List.fold_left
            (fun s g -> Unitary.apply (Circ.gate_unitary ~nqubits:n g) s)
            (State.basis n j) gates
        in
        let s_mat = Unitary.apply (Circ.unitary c) (State.basis n j) in
        State.approx_equal ~eps:1e-9 s_run s_chain
        && State.approx_equal ~eps:1e-9 s_run s_mat);
    Test.make ~name:"wire roundtrip on random basis circuits" ~count:100
      (list_of_size (Gen.int_range 0 30) arb_basis_gate)
      (fun gates ->
        let c = Circ.of_gates ~nqubits:4 gates in
        let parsed = Wire.parse ~nqubits:4 (Wire.emit c) in
        Circ.gates parsed = Circ.gates c);
    Test.make ~name:"lowering always yields basis-only equivalent circuits" ~count:30
      (pair (int_bound 7) (int_bound 7))
      (fun (xmask, ymask) ->
        let to_vec mask =
          let v = Bitvec.create 4 in
          for i = 0 to 3 do
            if mask lsr i land 1 = 1 then Bitvec.set v i true
          done;
          v
        in
        let lay = Ops.layout ~k:1 in
        let gates =
          Ops.v_x lay (to_vec xmask) @ Ops.w_y lay (to_vec ymask) @ Ops.s_k lay
        in
        let structured = Circ.of_gates ~nqubits:(Ops.data_qubits lay) gates in
        let basis = Lower.to_basis structured in
        Circ.is_basis_only basis
        && Verify.equivalent ~reference:structured ~candidate:basis ());
  ]

let suite =
  [
    ("gate well-formedness", `Quick, test_gate_wellformed);
    ("circ append/guards", `Quick, test_circ_append_and_guards);
    ("circ growth", `Quick, test_circ_growth);
    ("run matches manual", `Quick, test_run_matches_manual_state);
    ("structured gate semantics", `Quick, test_structured_gates_semantics);
    ("lower 1q macros", `Quick, test_lower_single_qubit_macros);
    ("lower cz", `Quick, test_lower_two_qubit);
    ("lower toffoli exact", `Quick, test_lower_toffoli_exact);
    ("lower mcx ladders", `Quick, test_lower_mcx_with_ancillas);
    ("lower mcz", `Quick, test_lower_mcz);
    ("lower whole circuit", `Quick, test_lower_whole_circuit);
    ("ancillas needed", `Quick, test_ancillas_needed);
    ("wire roundtrip", `Quick, test_wire_roundtrip);
    ("wire identity convention", `Quick, test_wire_identity_convention);
    ("wire rejects garbage", `Quick, test_wire_rejects_garbage);
    ("ops circuit = direct", `Quick, test_ops_circuits_match_direct_application);
    ("s_k global phase", `Quick, test_s_k_is_minus_flip_zero);
    ("grover step = iteration", `Quick, test_grover_step_is_grover_iteration);
    ("per-bit builders compose", `Quick, test_per_bit_builders_compose_to_whole);
    ("verify detects differences", `Quick, test_verify_detects_difference);
    ("unitary at 12 qubits", `Quick, test_unitary_twelve_qubits);
    ("gate_unitary guard", `Quick, test_gate_unitary_guard);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
