(* Integration tests: every experiment runs in quick mode and its rows
   carry the shapes the paper's claims predict. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed = 1234

let test_registry_complete () =
  check_int "15 experiments" 15 (List.length Experiments.Registry.ids);
  List.iter
    (fun id -> check id true (String.length (Experiments.Registry.description id) > 0))
    Experiments.Registry.ids;
  check "unknown id raises" true
    (match Experiments.Registry.description "e99" with
    | exception Not_found -> true
    | _ -> false)

let test_registry_runs_all_quick () =
  (* Printing into a throwaway buffer exercises every experiment. *)
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Experiments.Registry.run_all ~quick:true ~seed fmt;
  Format.pp_print_flush fmt ();
  check "substantial output" true (Buffer.length buf > 2000)

let test_e1_shape () =
  let rows = Experiments.E1_bcw_cost.rows ~quick:true ~seed () in
  check "nonempty" true (rows <> []);
  List.iter
    (fun (r : Experiments.E1_bcw_cost.row) ->
      check "all decisions correct" true r.Experiments.E1_bcw_cost.correct;
      check "costs positive" true (r.Experiments.E1_bcw_cost.cost_disjoint > 0.0))
    rows;
  let slope = Experiments.E1_bcw_cost.slope rows in
  check "sublinear in m" true (slope < 1.0)

let test_e2_certificates () =
  List.iter
    (fun (r : Experiments.E2_exact_cc.row) ->
      check_int "rows 2^m" (1 lsl r.Experiments.E2_exact_cc.m)
        r.Experiments.E2_exact_cc.distinct_rows;
      check_int "cc = m" r.Experiments.E2_exact_cc.m r.Experiments.E2_exact_cc.one_way_cc;
      check_int "fooling 2^m" (1 lsl r.Experiments.E2_exact_cc.m)
        r.Experiments.E2_exact_cc.fooling_set;
      check_int "rank 2^m" (1 lsl r.Experiments.E2_exact_cc.m)
        r.Experiments.E2_exact_cc.rank_gf2;
      check_int "EQ one-way = m" r.Experiments.E2_exact_cc.m
        r.Experiments.E2_exact_cc.eq_one_way;
      check "EQ randomized stays logarithmic" true
        (r.Experiments.E2_exact_cc.eq_randomized_bits <= 20))
    (Experiments.E2_exact_cc.rows ~quick:true ())

let test_e3_one_sidedness () =
  let rows = Experiments.E3_recognizer.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E3_recognizer.row) ->
      if String.equal r.Experiments.E3_recognizer.kind "member" then begin
        Alcotest.(check (float 1e-9)) "members accepted always" 1.0
          r.Experiments.E3_recognizer.accept_rate;
        Alcotest.(check (float 1e-9)) "exact prob 1" 1.0
          r.Experiments.E3_recognizer.mean_exact_accept
      end
      else
        check "non-members accepted at most 3/4 + noise" true
          (r.Experiments.E3_recognizer.mean_exact_accept <= 0.80))
    rows

let test_e4_amplification () =
  let rows = Experiments.E4_amplification.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E4_amplification.row) ->
      Alcotest.(check (float 1e-9)) "members stay" 1.0
        r.Experiments.E4_amplification.member_accept_rate)
    rows;
  let last = List.nth rows (List.length rows - 1) in
  check "final bound reaches 2/3" true last.Experiments.E4_amplification.reaches_oqbpl

let test_e5_census () =
  let rows = Experiments.E5_census.rows ~quick:true () in
  List.iter
    (fun (r : Experiments.E5_census.row) ->
      (if String.equal r.Experiments.E5_census.machine "copy-then-compare" then
         check_int "census = 2^m" (1 lsl r.Experiments.E5_census.m)
           r.Experiments.E5_census.configs_at_cut
       else if
         String.length r.Experiments.E5_census.machine >= 8
         && String.equal (String.sub r.Experiments.E5_census.machine 0 8) "compiled"
       then
         check_int "counter census = family" r.Experiments.E5_census.family_size
           r.Experiments.E5_census.configs_at_cut
       else check "O(1) census" true (r.Experiments.E5_census.configs_at_cut <= 4));
      check "within Fact 2.2" true
        (r.Experiments.E5_census.message_bits
        <= r.Experiments.E5_census.fact22_log2_bound +. 1e-9))
    rows

let test_e6_wall () =
  let rows = Experiments.E6_sketch_wall.rows ~quick:true ~seed ~k:3 () in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check "tiny budget fails hard" true
    (first.Experiments.E6_sketch_wall.bucket_false_claim > 0.5
    || first.Experiments.E6_sketch_wall.subsample_miss > 0.3);
  check "big budget succeeds" true
    (last.Experiments.E6_sketch_wall.bucket_false_claim < 0.4
    && last.Experiments.E6_sketch_wall.subsample_miss < 0.2)

let test_e7_block () =
  let rows = Experiments.E7_block_space.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E7_block_space.row) ->
      check "correct on both sides" true
        (r.Experiments.E7_block_space.member_ok && r.Experiments.E7_block_space.intersect_ok);
      check_int "storage = 2^k" (1 lsl r.Experiments.E7_block_space.k)
        r.Experiments.E7_block_space.storage_bits)
    rows;
  let s = Experiments.E7_block_space.storage_slope rows in
  check "storage slope near 1/3" true (Float.abs (s -. (1.0 /. 3.0)) < 0.08)

let test_e8_separation () =
  let rows = Experiments.E8_separation.rows ~quick:true ~seed () in
  let fits = Experiments.E8_separation.fits rows in
  let a, _ = fits.Experiments.E8_separation.quantum_vs_log in
  check "quantum bits grow mildly with log n" true (a > 0.0 && a < 40.0);
  List.iter
    (fun (r : Experiments.E8_separation.row) ->
      match r.Experiments.E8_separation.quantum_total_bits with
      | Some q -> check "quantum below naive" true (q <= r.Experiments.E8_separation.naive_bits + 16)
      | None -> ())
    rows

let test_e9_closed_form () =
  let rows = Experiments.E9_bbht.rows ~quick:true ~seed ~k:2 () in
  List.iter
    (fun (r : Experiments.E9_bbht.row) ->
      Alcotest.(check (float 1e-6)) "simulated = closed form"
        r.Experiments.E9_bbht.closed_form r.Experiments.E9_bbht.simulated;
      check "above 1/4" true r.Experiments.E9_bbht.above_quarter)
    rows

let test_e10_fingerprint_bound () =
  let rows = Experiments.E10_fingerprint.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E10_fingerprint.row) ->
      check "error below bound (with slack)" true
        (r.Experiments.E10_fingerprint.false_pass
        <= r.Experiments.E10_fingerprint.bound +. 0.05);
      check "wide prime essentially exact" true
        (r.Experiments.E10_fingerprint.wide_false_pass < 0.001))
    rows

let test_e11_lowering () =
  let rows = Experiments.E11_lowering.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E11_lowering.row) ->
      check "equivalent" true r.Experiments.E11_lowering.equivalent;
      check "roundtrip" true r.Experiments.E11_lowering.wire_roundtrip_ok;
      check "budget constant small" true (r.Experiments.E11_lowering.budget_constant < 4.0))
    rows

let test_e12_qfa () =
  let rows = Experiments.E12_qfa.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E12_qfa.row) ->
      Alcotest.(check (float 1e-9)) "member prob 1" 1.0
        r.Experiments.E12_qfa.member_prob;
      check "worst below threshold" true (r.Experiments.E12_qfa.worst_nonmember < 0.75);
      check "succinct" true
        (r.Experiments.E12_qfa.qfa_states < r.Experiments.E12_qfa.dfa_states
        || r.Experiments.E12_qfa.p <= 5))
    rows

let test_e13_nondet () =
  let rows = Experiments.E13_nondet.rows ~quick:true ~seed () in
  List.iter
    (fun (r : Experiments.E13_nondet.row) ->
      check "nondet machine correct" true r.Experiments.E13_nondet.correct;
      (if r.Experiments.E13_nondet.n <= 10 then
         check_int "census is 2^n" (1 lsl r.Experiments.E13_nondet.n)
           r.Experiments.E13_nondet.det_census);
      check "nondet space below census bits" true
        (float_of_int r.Experiments.E13_nondet.nondet_space_bits
        <= (3.0 *. r.Experiments.E13_nondet.det_message_bits) +. 20.0))
    rows

let test_e14_noise () =
  let rows = Experiments.E14_noise.rows ~quick:true ~seed ~k:2 () in
  (match rows with
  | clean :: _ ->
      Alcotest.(check (float 1e-9)) "no noise: perfect completeness" 1.0
        clean.Experiments.E14_noise.member_accept;
      check "no noise: quarter rejection" true
        (clean.Experiments.E14_noise.nonmember_reject >= 0.25 -. 0.12)
  | [] -> Alcotest.fail "no rows");
  let last = List.nth rows (List.length rows - 1) in
  check "heavy noise hurts completeness" true
    (last.Experiments.E14_noise.member_accept < 1.0)

let test_e15_compiled () =
  let rows = Experiments.E15_compiled.rows ~quick:true ~seed () in
  check_int "four machines" 4 (List.length rows);
  List.iter
    (fun (r : Experiments.E15_compiled.row) ->
      check "agrees with reference" true r.Experiments.E15_compiled.agree;
      check "nontrivial control" true (r.Experiments.E15_compiled.control_states > 0))
    rows;
  (* The shape machine's tape is dwarfed by its input. *)
  let shape = List.nth rows 3 in
  check "log-space tape" true
    (shape.Experiments.E15_compiled.tape_cells * 2
    < shape.Experiments.E15_compiled.sample_input_length)

let test_space_audit () =
  let a = Experiments.Space_audit.audit ~quick:true ~seed () in
  let lo, hi = Experiments.Space_audit.default_classical_band in
  check "classical slope in the n^(1/3) band" true
    (a.Experiments.Space_audit.fit.Experiments.Space_audit.classical_slope >= lo
    && a.Experiments.Space_audit.fit.Experiments.Space_audit.classical_slope <= hi);
  check "quantum data prefers the logarithmic model" true
    (a.Experiments.Space_audit.fit.Experiments.Space_audit.quantum_log_r2
    >= a.Experiments.Space_audit.fit.Experiments.Space_audit.quantum_power_r2);
  check "verdict passes" true (Experiments.Space_audit.passed a);
  (* The document is a pure function of (quick, seed). *)
  let doc a =
    Experiments.Json.to_string
      (Experiments.Space_audit.to_json ~seed ~quick:true a)
  in
  let b = Experiments.Space_audit.audit ~quick:true ~seed () in
  Alcotest.(check string) "audit JSON byte-stable" (doc a) (doc b)

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("space audit bands", `Slow, test_space_audit);
    ("registry runs all (quick)", `Slow, test_registry_runs_all_quick);
    ("e1 shape", `Slow, test_e1_shape);
    ("e2 certificates", `Quick, test_e2_certificates);
    ("e3 one-sidedness", `Slow, test_e3_one_sidedness);
    ("e4 amplification", `Slow, test_e4_amplification);
    ("e5 census", `Quick, test_e5_census);
    ("e6 wall", `Slow, test_e6_wall);
    ("e7 block", `Quick, test_e7_block);
    ("e8 separation", `Quick, test_e8_separation);
    ("e9 closed form", `Quick, test_e9_closed_form);
    ("e10 fingerprint", `Slow, test_e10_fingerprint_bound);
    ("e11 lowering", `Quick, test_e11_lowering);
    ("e12 qfa", `Quick, test_e12_qfa);
    ("e13 nondet", `Quick, test_e13_nondet);
    ("e14 noise", `Slow, test_e14_noise);
    ("e15 compiled", `Slow, test_e15_compiled);
  ]
