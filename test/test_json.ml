(* Golden and property tests for the JSON emitter / parser / diff that
   back `run-all --json` and `--check`. *)

open Experiments

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let sample =
  Json.Obj
    [
      ("b", Json.Int 2);
      ( "a",
        Json.List
          [ Json.Str "x\"y"; Json.Float 0.25; Json.Null; Json.Bool true ] );
      ("c", Json.Obj []);
    ]

(* The emitter's exact bytes are the contract `--json` reproducibility
   rests on: sorted keys, two-space indent, fixed float format, trailing
   newline.  Changing any of this must be a deliberate golden update. *)
let test_golden_emit () =
  let expected =
    "{\n\
    \  \"a\": [\n\
    \    \"x\\\"y\",\n\
    \    0.25,\n\
    \    null,\n\
    \    true\n\
    \  ],\n\
    \  \"b\": 2,\n\
    \  \"c\": {}\n\
     }\n"
  in
  check_str "golden document" expected (Json.to_string sample)

let test_float_format () =
  check_str "integral float keeps .0" "{\n  \"x\": 2.0\n}\n"
    (Json.to_string (Json.Obj [ ("x", Json.Float 2.0) ]));
  check_str "non-finite becomes null" "{\n  \"x\": null\n}\n"
    (Json.to_string (Json.Obj [ ("x", Json.Float Float.nan) ]))

let test_parse_roundtrip () =
  match Json.parse (Json.to_string sample) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
      check_str "canonical roundtrip" (Json.to_string sample)
        (Json.to_string parsed)

let test_parse_errors () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  check "truncated object" true (bad "{\"a\": 1");
  check "trailing garbage" true (bad "{} x");
  check "bare word" true (bad "flse")

let test_diff_identical () =
  Alcotest.(check (list string)) "no drift against itself" []
    (Json.diff sample sample)

let test_diff_tolerance () =
  let base = Json.Obj [ ("v", Json.Float 100.0) ] in
  let close = Json.Obj [ ("v", Json.Float 102.0) ] in
  let far = Json.Obj [ ("v", Json.Float 140.0) ] in
  Alcotest.(check (list string)) "within tolerance" []
    (Json.diff ~tolerance:5.0 base close);
  check "beyond tolerance flagged" true
    (Json.diff ~tolerance:5.0 base far <> []);
  (* Int vs Float compare as numbers. *)
  Alcotest.(check (list string)) "int ~ float" []
    (Json.diff ~tolerance:5.0
       (Json.Obj [ ("v", Json.Int 100) ])
       (Json.Obj [ ("v", Json.Float 101.0) ]))

let test_diff_structure () =
  let base = Json.Obj [ ("s", Json.Str "hello"); ("n", Json.Int 1) ] in
  check "string change flagged" true
    (Json.diff base (Json.Obj [ ("s", Json.Str "bye"); ("n", Json.Int 1) ])
    <> []);
  check "missing key flagged" true
    (Json.diff base (Json.Obj [ ("n", Json.Int 1) ]) <> []);
  check "array length change flagged" true
    (Json.diff
       (Json.List [ Json.Int 1 ])
       (Json.List [ Json.Int 1; Json.Int 2 ])
    <> [])

let test_diff_serialization_precision () =
  (* A float carries more precision than its 12-significant-digit
     serialized form; parsing the document back and diffing against the
     original must still report zero drift, or a run could never gate
     against its own baseline at --tolerance 0. *)
  let doc = Json.Obj [ ("v", Json.Float 0.5962068045632149) ] in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
      Alcotest.(check (list string)) "round-trip drifts 0%" []
        (Json.diff ~tolerance:0.0 parsed doc)

let test_diff_ignored_keys () =
  (* wall_ms is telemetry: a baseline recorded with --timing must check
     cleanly against a run without it, and vice versa. *)
  let with_timing =
    Json.Obj [ ("id", Json.Str "e1"); ("wall_ms", Json.Float 12.5) ]
  in
  let without = Json.Obj [ ("id", Json.Str "e1") ] in
  Alcotest.(check (list string)) "wall_ms ignored both ways" []
    (Json.diff with_timing without @ Json.diff without with_timing)

let test_diff_ignored_at_depth () =
  (* The full telemetry set — wall_ms, r_square, generated_at — is
     ignored however deeply it nests (run-all puts wall_ms on every
     result row; bench puts r_square on every kernel row). *)
  let doc wall r2 stamp gated =
    Json.Obj
      [
        ("generated_at", Json.Str stamp);
        ( "results",
          Json.List
            [
              Json.Obj
                [
                  ("id", Json.Str "e1");
                  ("wall_ms", Json.Float wall);
                  ( "body",
                    Json.Obj
                      [
                        ("r_square", Json.Float r2); ("gated", Json.Int gated);
                      ] );
                ];
            ] );
      ]
  in
  Alcotest.(check (list string)) "telemetry drift at any depth is silent" []
    (Json.diff (doc 1.0 0.99 "2026-08-01" 7) (doc 250.0 0.42 "2026-08-05" 7));
  (* ... while a sibling gated value still reports. *)
  let drifts = Json.diff (doc 1.0 0.99 "a" 7) (doc 250.0 0.42 "b" 8) in
  Alcotest.(check int) "exactly the gated sibling reports" 1 (List.length drifts);
  check "the drift names the gated key, not the telemetry" true
    (match drifts with
    | [ d ] ->
        let has_sub s sub =
          let n = String.length s and m = String.length sub in
          let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
          at 0
        in
        has_sub d "gated" && not (has_sub d "wall_ms")
    | _ -> false);
  (* An ignored-named key inside an ARRAY element's object is still
     ignored: the filter applies at every object, whatever its depth. *)
  Alcotest.(check (list string)) "custom ignore list respected" []
    (Json.diff ~ignored:[ "id" ]
       (Json.Obj [ ("id", Json.Str "a") ])
       (Json.Obj [ ("id", Json.Str "b") ]))

let prop_ignored_any_depth =
  (* Wrap a drifting telemetry leaf in random layers of objects/arrays;
     the diff must stay silent as long as the drift sits under an
     ignored key, and must report once a sibling gated key drifts. *)
  let gen = QCheck.Gen.(pair (list_size (int_bound 6) (int_bound 2)) (oneofl Json.default_ignored)) in
  QCheck.Test.make ~name:"ignored keys are ignored at any nesting depth"
    ~count:200 (QCheck.make gen) (fun (layers, key) ->
      let wrap tele =
        List.fold_left
          (fun acc layer ->
            match layer with
            | 0 -> Json.Obj [ ("layer", acc) ]
            | 1 -> Json.List [ acc; Json.Null ]
            | _ -> Json.Obj [ ("a", acc); ("sibling", Json.Int 5) ])
          (Json.Obj [ (key, Json.Float tele); ("g", Json.Int 7) ])
          layers
      in
      (* Telemetry drifts only: silent. *)
      Json.diff (wrap 1.0) (wrap 250.0) = []
      &&
      (* Gated sibling drifts at the same depth: reported. *)
      let base = Json.Obj [ (key, Json.Int 1); ("g", Json.Int 5) ] in
      let cur = Json.Obj [ (key, Json.Int 99); ("g", Json.Int 6) ] in
      List.length (Json.diff base cur) = 1)

let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          let leaf =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) small_signed_int;
                map (fun f -> Json.Float f) (float_bound_inclusive 1e6);
                map (fun s -> Json.Str s) string_printable;
              ]
          in
          if n = 0 then leaf
          else
            oneof
              [
                leaf;
                map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_bound 4)
                     (pair string_printable (self (n / 2))));
              ]))
  in
  QCheck.Test.make ~name:"parse . to_string = canonical identity" ~count:200
    (QCheck.make gen) (fun doc ->
      match Json.parse (Json.to_string doc) with
      | Error _ -> false
      | Ok parsed -> Json.to_string parsed = Json.to_string doc)

let suite =
  [
    ("golden emit", `Quick, test_golden_emit);
    ("float format", `Quick, test_float_format);
    ("parse roundtrip", `Quick, test_parse_roundtrip);
    ("parse errors", `Quick, test_parse_errors);
    ("diff identical", `Quick, test_diff_identical);
    ("diff tolerance", `Quick, test_diff_tolerance);
    ("diff structure", `Quick, test_diff_structure);
    ("diff serialization precision", `Quick, test_diff_serialization_precision);
    ("diff ignored keys", `Quick, test_diff_ignored_keys);
    ("diff ignored at depth", `Quick, test_diff_ignored_at_depth);
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_ignored_any_depth;
  ]
