(* Aggregated test entry point: one Alcotest section per library. *)

let () =
  Alcotest.run "oqsc"
    [
      ("mathx", Test_mathx.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("trace", Test_trace.suite);
      ("quantum", Test_quantum.suite);
      ("density", Test_density.suite);
      ("circuit", Test_circuit.suite);
      ("optimize", Test_optimize.suite);
      ("grover", Test_grover.suite);
      ("amplify", Test_amplify.suite);
      ("machine", Test_machine.suite);
      ("program", Test_program.suite);
      ("lang", Test_lang.suite);
      ("comm", Test_comm.suite);
      ("oqsc-core", Test_oqsc.suite);
      ("nondet", Test_nondet.suite);
      ("qfa", Test_qfa.suite);
      ("experiments", Test_experiments.suite);
      ("table+registry", Test_table.suite);
      ("parallel", Test_parallel.suite);
      ("json", Test_json.suite);
      ("runner", Test_runner.suite);
      ("merge", Test_merge.suite);
      ("integration", Test_integration.suite);
      ("tune", Test_tune.suite);
      ("vm", Test_vm.suite);
      ("serve", Test_serve.suite);
      ("edges", Test_edges.suite);
    ]
