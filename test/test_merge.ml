(* Sharding and merge coverage: the I/N spec parser, the round-robin
   partition law (qcheck), shard-document plumbing on the experiments /
   space-audit emitters, and the merge tool's central contract — any
   order of a complete shard set recombines into bytes identical to the
   unsharded document, while incomplete, duplicated, overlapping, or
   mismatched sets fail with a pointed message. *)

open Experiments

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let seed = 424242

(* Cheap experiments only: e2/e5/e13 finish in milliseconds on quick. *)
let only = [ "e2"; "e5"; "e13" ]

let full_doc () =
  Json.of_results ~seed ~quick:true (Registry.results ~quick:true ~seed ~only ())

let shard_doc spec =
  let selected = Merge.assign spec only in
  Json.of_results
    ~shard:(spec.Merge.index, spec.Merge.count)
    ~seed ~quick:true
    (Registry.results ~quick:true ~seed ~only:selected ())

let shard_docs count =
  List.init count (fun index ->
      let spec = { Merge.index; count } in
      (Printf.sprintf "shard_%d.json" index, shard_doc spec))

(* Documents are cheap to tamper with in memory: replace one envelope
   field of a [Json.Obj]. *)
let set_field name value = function
  | Json.Obj fields ->
      Json.Obj
        (List.map (fun (k, v) -> if k = name then (k, value) else (k, v)) fields)
  | doc -> doc

let expect_error ~substring docs =
  match Merge.merge docs with
  | Ok _ -> Alcotest.failf "merge unexpectedly succeeded (wanted %S)" substring
  | Error msg ->
      check
        (Printf.sprintf "error %S mentions %S" msg substring)
        true
        (let nh = String.length msg and nn = String.length substring in
         let rec at i =
           i + nn <= nh && (String.sub msg i nn = substring || at (i + 1))
         in
         at 0)

(* ------------------------------------------------------------- parser *)

let test_parse_valid () =
  (match Merge.parse_spec "0/3" with
  | Ok { Merge.index = 0; count = 3 } -> ()
  | _ -> Alcotest.fail "0/3 should parse");
  (match Merge.parse_spec "2/3" with
  | Ok { Merge.index = 2; count = 3 } -> ()
  | _ -> Alcotest.fail "2/3 should parse");
  (match Merge.parse_spec "0/1" with
  | Ok { Merge.index = 0; count = 1 } -> ()
  | _ -> Alcotest.fail "0/1 should parse");
  check_str "to_string round-trips" "2/3"
    (match Merge.parse_spec "2/3" with
    | Ok spec -> Merge.to_string spec
    | Error e -> e)

let test_parse_invalid () =
  let rejected ~mentions s =
    match Merge.parse_spec s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error msg ->
        check
          (Printf.sprintf "%S error mentions %S" s mentions)
          true
          (let nh = String.length msg and nn = String.length mentions in
           let rec at i =
             i + nn <= nh && (String.sub msg i nn = mentions || at (i + 1))
           in
           at 0);
        check (Printf.sprintf "%S error shows the format" s) true
          (let nn = String.length "I/N" and nh = String.length msg in
           let rec at i =
             i + nn <= nh && (String.sub msg i nn = "I/N" || at (i + 1))
           in
           at 0)
  in
  rejected ~mentions:"out of range" "3/3";
  rejected ~mentions:"out of range" "5/2";
  rejected ~mentions:"out of range" "-1/3";
  rejected ~mentions:"N must be >= 1" "0/0";
  rejected ~mentions:"N must be >= 1" "0/-2";
  rejected ~mentions:"malformed" "a/3";
  rejected ~mentions:"malformed" "1/b";
  rejected ~mentions:"malformed" "1";
  rejected ~mentions:"malformed" "";
  rejected ~mentions:"malformed" "1/2/3"

(* -------------------------------------------------- partition (qcheck) *)

let prop_partition =
  let gen = QCheck.Gen.(pair (int_range 1 6) (list_size (int_bound 20) int)) in
  QCheck.Test.make ~name:"round-robin sharding is a stable partition"
    ~count:200 (QCheck.make gen) (fun (count, items) ->
      let shards =
        List.init count (fun index -> Merge.assign { Merge.index; count } items)
      in
      (* Every position lands in exactly one shard... *)
      List.iteri
        (fun position _ ->
          let owners =
            List.length
              (List.filter
                 (fun index -> Merge.keeps { Merge.index; count } position)
                 (List.init count Fun.id))
          in
          if owners <> 1 then
            QCheck.Test.fail_reportf "position %d owned by %d shards" position
              owners)
        items;
      (* ...so the shard sizes add back up... *)
      List.length items = List.fold_left (fun n s -> n + List.length s) 0 shards
      (* ...and the assignment is stable across calls. *)
      && List.for_all2 ( = ) shards
           (List.init count (fun index ->
                Merge.assign { Merge.index; count } items)))

let prop_merge_any_order =
  (* Shard documents are built once; the property shuffles their order
     (including duplications-free permutations drawn from random swaps)
     and asserts the merged bytes never change. *)
  let full = lazy (Json.to_string (full_doc ())) in
  let docs2 = lazy (shard_docs 2) in
  let docs3 = lazy (shard_docs 3) in
  let docs4 = lazy (shard_docs 4) (* more shards than experiments *) in
  let gen = QCheck.Gen.(pair (oneofl [ 2; 3; 4 ]) (list_size (return 8) (int_bound 100))) in
  QCheck.Test.make ~name:"merging any shard order reproduces the unsharded bytes"
    ~count:60 (QCheck.make gen) (fun (count, swaps) ->
      let docs =
        Array.of_list
          (Lazy.force (match count with 2 -> docs2 | 3 -> docs3 | _ -> docs4))
      in
      let n = Array.length docs in
      List.iter
        (fun s ->
          let i = s mod n and j = s * 7 mod n in
          let t = docs.(i) in
          docs.(i) <- docs.(j);
          docs.(j) <- t)
        swaps;
      match Merge.merge (Array.to_list docs) with
      | Error msg -> QCheck.Test.fail_reportf "merge failed: %s" msg
      | Ok merged -> Json.to_string merged = Lazy.force full)

(* -------------------------------------------------- merge validation *)

let test_merge_identity_bytes () =
  (* The deterministic core of the tentpole, without the shuffling. *)
  let full = Json.to_string (full_doc ()) in
  List.iter
    (fun count ->
      match Merge.merge (shard_docs count) with
      | Error msg -> Alcotest.failf "merge N=%d failed: %s" count msg
      | Ok merged ->
          check_str
            (Printf.sprintf "N=%d merged = unsharded bytes" count)
            full (Json.to_string merged))
    [ 1; 2; 3 ]

let test_shard_field_present () =
  match shard_doc { Merge.index = 1; count = 2 } with
  | Json.Obj fields -> (
      match List.assoc_opt "shard" fields with
      | Some (Json.Obj s) ->
          check "shard.index" true (List.assoc "index" s = Json.Int 1);
          check "shard.of" true (List.assoc "of" s = Json.Int 2)
      | _ -> Alcotest.fail "sharded document must carry a shard object")
  | _ -> Alcotest.fail "document must be an object"

let test_merge_rejects_incomplete () =
  match shard_docs 3 with
  | [ s0; s1; _ ] -> expect_error ~substring:"missing shard(s) 2" [ s0; s1 ]
  | _ -> Alcotest.fail "expected three shards"

let test_merge_rejects_duplicate () =
  match shard_docs 2 with
  | [ s0; s1 ] -> expect_error ~substring:"duplicate shard 0/2" [ s0; s0; s1 ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_unsharded_input () =
  expect_error ~substring:"not a shard document"
    [ ("full.json", full_doc ()) ]

let test_merge_rejects_empty () =
  expect_error ~substring:"no input" []

let test_merge_rejects_seed_mismatch () =
  match shard_docs 2 with
  | [ s0; (label, d1) ] ->
      expect_error ~substring:"seed"
        [ s0; (label, set_field "seed" (Json.Int 7) d1) ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_quick_mismatch () =
  match shard_docs 2 with
  | [ s0; (label, d1) ] ->
      expect_error ~substring:"quick"
        [ s0; (label, set_field "quick" (Json.Bool false) d1) ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_version_skew () =
  match shard_docs 2 with
  | [ s0; (label, d1) ] ->
      expect_error ~substring:"version skew"
        [ s0; (label, set_field "version" (Json.Int 99) d1) ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_kind_mismatch () =
  let audit =
    Space_audit.shard_to_json ~shard:(1, 2) ~seed ~quick:true
      (Space_audit.rows ~quick:true ~shard:(1, 2) ~seed ())
  in
  match shard_docs 2 with
  | [ s0; _ ] ->
      expect_error ~substring:"kind" [ s0; ("audit.json", audit) ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_overlap () =
  (* Forge shard 1 out of shard 0's payload: indices complete, ids not
     disjoint. *)
  match shard_docs 2 with
  | [ ((_, d0) as s0); _ ] ->
      let forged =
        set_field "shard"
          (Json.Obj [ ("index", Json.Int 1); ("of", Json.Int 2) ])
          d0
      in
      expect_error ~substring:"overlapping shards" [ s0; ("forged.json", forged) ]
  | _ -> Alcotest.fail "expected two shards"

let test_merge_rejects_unknown_id () =
  match shard_docs 2 with
  | [ s0; (label, d1) ] ->
      let tampered =
        match d1 with
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (function
                   | "experiments", Json.List (Json.Obj e :: rest) ->
                       ( "experiments",
                         Json.List
                           (Json.Obj
                              (List.map
                                 (fun (k, v) ->
                                   if k = "id" then (k, Json.Str "e99")
                                   else (k, v))
                                 e)
                           :: rest) )
                   | kv -> kv)
                 fields)
        | doc -> doc
      in
      expect_error ~substring:"valid ids" [ s0; (label, tampered) ]
  | _ -> Alcotest.fail "expected two shards"

(* ------------------------------------------------------- space-audit *)

let test_audit_shard_rows_match_full_sweep () =
  let strip (r : Space_audit.row) = { r with Space_audit.wall_ms = 0.0 } in
  let full = List.map strip (Space_audit.rows ~quick:true ~seed ()) in
  let recombined =
    List.concat_map
      (fun index ->
        List.map strip (Space_audit.rows ~quick:true ~shard:(index, 2) ~seed ()))
      [ 0; 1 ]
    |> List.sort (fun (a : Space_audit.row) b ->
           compare a.Space_audit.k b.Space_audit.k)
  in
  (* Skipped rows burn their PRNG splits, so measured rows are the very
     rows the full sweep produces — the property merge relies on. *)
  check "sharded rows = full-sweep rows" true (full = recombined)

let test_audit_merge_identity_bytes () =
  let full =
    Json.to_string
      (Space_audit.to_json ~seed ~quick:true (Space_audit.audit ~quick:true ~seed ()))
  in
  let shard index =
    ( Printf.sprintf "sa_%d.json" index,
      Space_audit.shard_to_json ~shard:(index, 2) ~seed ~quick:true
        (Space_audit.rows ~quick:true ~shard:(index, 2) ~seed ()) )
  in
  match Merge.merge [ shard 1; shard 0 ] with
  | Error msg -> Alcotest.failf "audit merge failed: %s" msg
  | Ok merged ->
      check_str "merged audit = unsharded bytes" full (Json.to_string merged)

let test_audit_shard_doc_has_no_verdict () =
  match
    Space_audit.shard_to_json ~shard:(0, 2) ~seed ~quick:true
      (Space_audit.rows ~quick:true ~shard:(0, 2) ~seed ())
  with
  | Json.Obj fields ->
      check "no fit in a shard document" true (List.assoc_opt "fit" fields = None);
      check "no verdict in a shard document" true
        (List.assoc_opt "verdict" fields = None);
      check "shard field present" true (List.assoc_opt "shard" fields <> None)
  | _ -> Alcotest.fail "document must be an object"

(* ----------------------------------------------------- --only guard *)

let test_validate_only () =
  check "all valid ids pass" true (Registry.validate_only Registry.ids = Ok ());
  check "empty selection passes validation" true (Registry.validate_only [] = Ok ());
  match Registry.validate_only [ "e2"; "e99"; "nope" ] with
  | Ok () -> Alcotest.fail "unknown ids must be rejected"
  | Error msg ->
      let mentions sub =
        let nh = String.length msg and nn = String.length sub in
        let rec at i = i + nn <= nh && (String.sub msg i nn = sub || at (i + 1)) in
        at 0
      in
      check "names every offender" true (mentions "e99" && mentions "nope");
      check "lists the catalogue" true (mentions "valid ids" && mentions "e15")

let suite =
  [
    ("parse_spec accepts I/N", `Quick, test_parse_valid);
    ("parse_spec rejects malformed specs", `Quick, test_parse_invalid);
    ("merged bytes = unsharded bytes (N=1,2,3)", `Quick, test_merge_identity_bytes);
    ("shard provenance field emitted", `Quick, test_shard_field_present);
    ("merge rejects incomplete sets", `Quick, test_merge_rejects_incomplete);
    ("merge rejects duplicate shards", `Quick, test_merge_rejects_duplicate);
    ("merge rejects unsharded inputs", `Quick, test_merge_rejects_unsharded_input);
    ("merge rejects empty input", `Quick, test_merge_rejects_empty);
    ("merge rejects seed mismatch", `Quick, test_merge_rejects_seed_mismatch);
    ("merge rejects quick mismatch", `Quick, test_merge_rejects_quick_mismatch);
    ("merge rejects version skew", `Quick, test_merge_rejects_version_skew);
    ("merge rejects kind mismatch", `Quick, test_merge_rejects_kind_mismatch);
    ("merge rejects overlapping payloads", `Quick, test_merge_rejects_overlap);
    ("merge rejects unknown experiment ids", `Quick, test_merge_rejects_unknown_id);
    ("audit shard rows match the full sweep", `Quick, test_audit_shard_rows_match_full_sweep);
    ("audit merge = unsharded bytes", `Quick, test_audit_merge_identity_bytes);
    ("audit shard documents defer the verdict", `Quick, test_audit_shard_doc_has_no_verdict);
    ("validate_only names offenders", `Quick, test_validate_only);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_partition; prop_merge_any_order ]
