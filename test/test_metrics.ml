(* The Obs.Metrics registry: bucket totality, the merge law, and the
   byte-stability of both renderers (Prometheus text and the
   oqsc-metrics JSON document). *)

module M = Obs.Metrics
module Json = Experiments.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------ buckets *)

let sample_gen =
  QCheck.(
    oneof
      [
        float;
        map float_of_int small_signed_int;
        oneofl [ 0.; 1.; 2.; 1024.; nan; infinity; neg_infinity; -1.; 0.5 ];
        map (fun i -> ldexp 1. (i mod 64)) small_nat;
      ])

let prop_bucket_total =
  QCheck.Test.make ~count:500 ~name:"every sample lands in exactly one bucket"
    sample_gen (fun x ->
      let i = M.bucket_index x in
      if i < 0 || i >= M.bucket_count then false
      else if i = M.bucket_count - 1 then
        (* overflow bucket: above every finite bound *)
        (not (x <= M.bucket_upper (M.bucket_count - 2))) || x <> x
      else
        (* within its own bound, above the previous one (bucket 0 also
           catches everything unordered or below — hence [not (x > _)]
           rather than [x <= _], which NaN fails) *)
        (not (x > M.bucket_upper i))
        && (i = 0 || not (x <= M.bucket_upper (i - 1))))

let prop_counts_sum =
  QCheck.Test.make ~count:200 ~name:"histogram counts sum to total"
    QCheck.(list sample_gen)
    (fun xs ->
      let r = M.create_registry () in
      List.iter (M.observe ~registry:r "h") xs;
      match M.snapshot ~registry:r () with
      | [ ("h", M.Histogram { counts; total; _ }) ] ->
          Array.length counts = M.bucket_count
          && Array.fold_left ( + ) 0 counts = total
          && total = List.length xs
      | [] -> xs = [] (* nothing observed, nothing registered *)
      | _ -> false)

let feed r (counters, gauges, samples) =
  List.iter (fun n -> M.counter_add ~registry:r "c" n) counters;
  List.iter (fun n -> M.gauge_add ~registry:r "g" n) gauges;
  List.iter (M.observe ~registry:r "h") samples

(* Samples for the merge law must sum exactly: the merged registry adds
   the two partial histogram sums while the reference feeds every sample
   in sequence, so with arbitrary doubles the two totals can differ in
   the last ulp and (rarely) straddle a 12-digit rendering boundary.
   Dyadic rationals with small numerators keep both fold orders exact;
   nan/infinity stay in because they propagate identically either way. *)
let exact_sample_gen =
  QCheck.(
    oneof
      [
        map (fun n -> float_of_int (n - 800) /. 16.0) (int_bound 1600);
        oneofl [ 0.; 1.; 1024.; nan; infinity; neg_infinity ];
      ])

let stream_gen =
  QCheck.(triple (list small_nat) (list small_signed_int) (list exact_sample_gen))

let prop_merge_law =
  QCheck.Test.make ~count:200
    ~name:"merge of two registries = registry of merged streams"
    QCheck.(pair stream_gen stream_gen)
    (fun (s1, s2) ->
      let a = M.create_registry () and b = M.create_registry () in
      feed a s1;
      feed b s2;
      M.merge ~into:a b;
      let whole = M.create_registry () in
      feed whole s1;
      feed whole s2;
      (* Compare through the canonical document so float sums are
         compared as rendered. *)
      Json.to_string (Experiments.Metrics_doc.document (M.snapshot ~registry:a ()))
      = Json.to_string
          (Experiments.Metrics_doc.document (M.snapshot ~registry:whole ())))

(* ----------------------------------------------------- registry edges *)

let test_name_validation () =
  let r = M.create_registry () in
  M.counter_add ~registry:r "ok_name:total" 1;
  check "bad leading digit rejected" true
    (try
       M.counter_add ~registry:r "9bad" 1;
       false
     with Invalid_argument _ -> true);
  check "negative counter step rejected" true
    (try
       M.counter_add ~registry:r "c" (-1);
       false
     with Invalid_argument _ -> true);
  check "type clash rejected" true
    (try
       M.gauge_set ~registry:r "ok_name:total" 3;
       false
     with Invalid_argument _ -> true)

let test_snapshot_sorted () =
  let r = M.create_registry () in
  M.counter_incr ~registry:r "zeta";
  M.gauge_set ~registry:r "alpha" 2;
  M.observe ~registry:r "mid" 3.0;
  Alcotest.(check (list string))
    "names sorted" [ "alpha"; "mid"; "zeta" ]
    (List.map fst (M.snapshot ~registry:r ()))

(* ----------------------------------------------------- byte stability *)

let deterministic_samples =
  [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0; 1000.0; 1e20; -4.0; nan ]

let feed_fixture r =
  M.counter_add ~registry:r "serve_requests_total" 7;
  M.gauge_set ~registry:r "serve_queue_depth" 3;
  List.iter (M.observe ~registry:r "serve_request_latency_ms")
    deterministic_samples

let test_document_byte_stable () =
  let render () =
    let r = M.create_registry () in
    feed_fixture r;
    Json.to_string (Experiments.Metrics_doc.document (M.snapshot ~registry:r ()))
  in
  let a = render () and b = render () in
  check_str "equal snapshots render to equal bytes" a b;
  (* And parsing it back yields a structurally equal value: the
     document uses only the canonical emitter's conventions. *)
  match Json.parse a with
  | Ok v -> check_str "round trips" a (Json.to_string v)
  | Error e -> Alcotest.failf "document does not re-parse: %s" e

let test_metrics_reply_byte_stable () =
  (* The regression ISSUE.md asks for: a [metrics] barrier reply built
     from identical runs is byte-identical, wall clock pinned. *)
  let line () =
    let r = M.create_registry () in
    feed_fixture r;
    Serve.Protocol.to_line
      (Serve.Protocol.reply_to_json
         (Serve.Protocol.Ok_reply
            {
              v = Serve.Protocol.metrics_version;
              id = "m";
              op = "metrics";
              wall_ms = 0.0;
              payload =
                Experiments.Metrics_doc.document (M.snapshot ~registry:r ());
            }))
  in
  check_str "metrics reply bytes stable across runs" (line ()) (line ())

let test_prometheus_rendering () =
  let r = M.create_registry () in
  feed_fixture r;
  let text = M.to_prometheus (M.snapshot ~registry:r ()) in
  let has s =
    (* substring search, small inputs *)
    let n = String.length s and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = s || go (i + 1)) in
    go 0
  in
  check "TYPE line for the counter" true
    (has "# TYPE serve_requests_total counter");
  check "counter sample" true (has "serve_requests_total 7");
  check "gauge sample" true (has "serve_queue_depth 3");
  check "TYPE line for the histogram" true
    (has "# TYPE serve_request_latency_ms histogram");
  check "le=1 bucket present" true
    (has {|serve_request_latency_ms_bucket{le="1"}|});
  check "+Inf bucket present" true
    (has {|serve_request_latency_ms_bucket{le="+Inf"} 10|});
  check "_count totals every sample" true
    (has "serve_request_latency_ms_count 10");
  check "renderer is deterministic" true
    (String.equal text (M.to_prometheus (M.snapshot ~registry:r ())));
  (* Cumulative buckets never decrease as le grows. *)
  let lines = String.split_on_char '\n' text in
  let bucket_counts =
    List.filter_map
      (fun l ->
        match String.index_opt l '}' with
        | Some i
          when String.length l > 7
               && String.sub l 0 (min 31 (String.length l))
                  = "serve_request_latency_ms_bucket" ->
            int_of_string_opt
              (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
        | _ -> None)
      lines
  in
  check "at least two bucket lines" true (List.length bucket_counts >= 2);
  check "buckets are cumulative (nondecreasing)" true
    (fst
       (List.fold_left
          (fun (ok, prev) c -> (ok && c >= prev, c))
          (true, 0) bucket_counts));
  check_int "last cumulative bucket = count"
    (List.length deterministic_samples)
    (List.nth bucket_counts (List.length bucket_counts - 1))

let suite =
  [
    ("name validation and type clashes", `Quick, test_name_validation);
    ("snapshot is name-sorted", `Quick, test_snapshot_sorted);
    ("oqsc-metrics document is byte-stable", `Quick, test_document_byte_stable);
    ("metrics reply line is byte-stable", `Quick, test_metrics_reply_byte_stable);
    ("prometheus renderer: types, buckets, determinism", `Quick, test_prometheus_rendering);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_bucket_total; prop_counts_sum; prop_merge_law ]
