(* Tests for the Obs resource-tracing layer: sink semantics, the
   ambient scope, the Parallel chunk-sink bridge, and the determinism
   contract (instrumented and uninstrumented runs must produce the same
   experiment results, byte for byte once serialized). *)

open Mathx

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------- sinks *)

let test_counter_basics () =
  let t = Obs.create () in
  check_int "unset counter reads 0" 0 (Obs.count t "x");
  Obs.incr t "x";
  Obs.add t "x" 4;
  Obs.add t "x" 0;
  check_int "1 + 4 + 0" 5 (Obs.count t "x");
  check_int "other counters unaffected" 0 (Obs.count t "y");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs.add: counters are monotonic")
    (fun () -> Obs.add t "x" (-1))

let test_gauge_interleaved () =
  let t = Obs.create () in
  check_int "unset gauge level" 0 (Obs.gauge_level t "g");
  check_int "unset gauge peak" 0 (Obs.gauge_peak t "g");
  Obs.gauge_add t "g" 10;
  Obs.gauge_add t "g" (-4);
  Obs.gauge_add t "g" 5;
  (* level 11 > previous peak 10 *)
  Obs.gauge_add t "g" (-11);
  check_int "level is the running sum" 0 (Obs.gauge_level t "g");
  check_int "peak is the high-water mark" 11 (Obs.gauge_peak t "g")

let test_gauge_observe () =
  let t = Obs.create () in
  Obs.gauge_add t "g" 3;
  Obs.gauge_observe t "g" 9;
  Obs.gauge_observe t "g" 2;
  check_int "observe raises the peak only" 9 (Obs.gauge_peak t "g");
  check_int "observe leaves the level alone" 3 (Obs.gauge_level t "g")

let test_span_nesting () =
  let t = Obs.create () in
  check_int "no open spans" 0 (Obs.span_depth t);
  let r =
    Obs.with_span t "outer" (fun () ->
        check_int "depth 1 inside" 1 (Obs.span_depth t);
        Obs.with_span t "inner" (fun () -> Obs.span_depth t))
  in
  check_int "depth 2 in the inner span" 2 r;
  check_int "depth restored" 0 (Obs.span_depth t);
  check_int "outer counted" 1 (Obs.count t "span.outer");
  check_int "inner counted" 1 (Obs.count t "span.inner");
  check_int "peak depth on the span.depth gauge" 2
    (Obs.gauge_peak t "span.depth")

let test_span_exception_safe () =
  let t = Obs.create () in
  (try Obs.with_span t "boom" (fun () -> failwith "boom") with Failure _ -> ());
  check_int "depth restored after an exception" 0 (Obs.span_depth t);
  check_int "entry still counted" 1 (Obs.count t "span.boom")

let test_snapshot_sorted_and_peaks () =
  let t = Obs.create () in
  Obs.add t "b.counter" 2;
  Obs.add t "a.counter" 1;
  Obs.gauge_add t "z.gauge" 7;
  Obs.gauge_add t "z.gauge" (-7);
  let snap = Obs.snapshot t in
  Alcotest.(check (list (pair string int)))
    "sorted, gauges serialized as <name>.peak"
    [ ("a.counter", 1); ("b.counter", 2); ("z.gauge.peak", 7) ]
    snap

let test_merge_semantics () =
  let a = Obs.create () and b = Obs.create () in
  Obs.add a "c" 3;
  Obs.add b "c" 4;
  Obs.add b "only_b" 1;
  Obs.gauge_add a "g" 10;
  Obs.gauge_add a "g" (-10);
  Obs.gauge_add b "g" 6;
  Obs.merge ~into:a b;
  check_int "counters add" 7 (Obs.count a "c");
  check_int "missing counters appear" 1 (Obs.count a "only_b");
  check_int "gauge peaks combine by max" 10 (Obs.gauge_peak a "g");
  check_int "gauge levels add" 6 (Obs.gauge_level a "g")

(* ------------------------------------------------------------- scope *)

let test_scope_install_restore () =
  check "no ambient sink by default" true (Obs.Scope.current () = None);
  (* Probes without a sink are no-ops, not errors. *)
  Obs.Scope.incr "ignored";
  Obs.Scope.gauge_add "ignored" 5;
  let outer = Obs.create () and inner = Obs.create () in
  Obs.Scope.with_sink outer (fun () ->
      Obs.Scope.incr "seen";
      check "current = installed" true (Obs.Scope.current () = Some outer);
      Obs.Scope.with_sink inner (fun () -> Obs.Scope.incr "seen");
      check "outer restored after nested extent" true
        (Obs.Scope.current () = Some outer);
      Obs.Scope.incr "seen");
  check "slot empty again" true (Obs.Scope.current () = None);
  check_int "outer saw its two probes" 2 (Obs.count outer "seen");
  check_int "inner saw the nested probe" 1 (Obs.count inner "seen")

let test_scope_restores_on_exception () =
  let sink = Obs.create () in
  (try Obs.Scope.with_sink sink (fun () -> failwith "boom")
   with Failure _ -> ());
  check "slot cleared after an exception" true (Obs.Scope.current () = None)

(* -------------------------------------------------- parallel bridge *)

let test_parallel_bridge_domain_independent () =
  let work ~chunk ~rng =
    Obs.Scope.add "work.items" (chunk + 1);
    Obs.Scope.gauge_add "work.live" (chunk + 1);
    Obs.Scope.gauge_add "work.live" (-(chunk + 1));
    ignore (Rng.int rng 100)
  in
  let snap domains =
    let sink = Obs.create () in
    Obs.Scope.with_sink sink (fun () ->
        ignore
          (Parallel.map_chunks ~domains ~chunks:6 work ~rng:(Rng.create 7)));
    Obs.snapshot sink
  in
  let seq = snap 1 and par = snap 4 in
  Alcotest.(check (list (pair string int)))
    "sequential and 4-domain snapshots agree" seq par;
  check_int "all chunks merged" 21 (List.assoc "work.items" seq);
  check_int "one split per chunk counted" 6 (List.assoc "rng.splits" seq);
  (* One explicit draw per chunk; splitting draws internally too, so
     only a lower bound is stable. *)
  check "rng draws counted across domains" true
    (List.assoc "rng.draws" seq >= 6)

(* --------------------------------------------------------- determinism *)

let serialize body =
  Experiments.Json.to_string
    (Experiments.Json.of_result
       {
         Experiments.Report.id = "probe";
         description = "";
         seed = 0;
         quick = true;
         wall_ms = 0.0;
         resources = [];
         body;
       })

let test_instrumented_run_identical () =
  (* The sink observes; it must never feed back into seeded results. *)
  let plain = Experiments.E3_recognizer.body ~quick:true ~seed:11 () in
  let sink = Obs.create () in
  let traced =
    Obs.Scope.with_sink sink (fun () ->
        Experiments.E3_recognizer.body ~quick:true ~seed:11 ())
  in
  Alcotest.(check string)
    "instrumented = uninstrumented, byte for byte" (serialize plain)
    (serialize traced);
  check "rng draws observed" true (Obs.count sink "rng.draws" > 0);
  check "quantum gates observed" true (Obs.count sink "quantum.gates" > 0);
  check "workspace peak observed" true
    (Obs.gauge_peak sink "workspace.classical_bits" > 0)

let test_registry_resources () =
  let r = Experiments.Registry.result ~quick:true ~seed:11 "e3" in
  check "resources section nonempty" true (r.Experiments.Report.resources <> []);
  let sorted =
    List.sort compare (List.map fst r.Experiments.Report.resources)
  in
  check "resources keys sorted" true
    (List.map fst r.Experiments.Report.resources = sorted);
  let again = Experiments.Registry.result ~quick:true ~seed:11 "e3" in
  check "resources reproducible" true
    (r.Experiments.Report.resources = again.Experiments.Report.resources)

let test_registry_parallel_vs_sequential () =
  let doc sequential =
    Experiments.Json.to_string
      (Experiments.Json.of_results ~seed:11 ~quick:true
         (Experiments.Registry.results ~quick:true ~seed:11 ~sequential
            ~only:[ "e3"; "e12" ] ()))
  in
  Alcotest.(check string)
    "parallel and sequential documents identical (resources included)"
    (doc true) (doc false)

(* ---------------------------------------------------------- properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"counter equals the sum of its increments" ~count:200
      (small_list small_nat)
      (fun deltas ->
        let t = Obs.create () in
        List.iter (Obs.add t "c") deltas;
        Obs.count t "c" = List.fold_left ( + ) 0 deltas);
    Test.make ~name:"counter is monotonic along any increment sequence"
      ~count:200 (small_list small_nat)
      (fun deltas ->
        let t = Obs.create () in
        List.for_all
          (fun d ->
            let before = Obs.count t "c" in
            Obs.add t "c" d;
            Obs.count t "c" >= before)
          deltas);
    Test.make
      ~name:"gauge: level = sum, peak = max(0, max prefix sum) interleaved"
      ~count:300
      (small_list (int_range (-50) 50))
      (fun deltas ->
        let t = Obs.create () in
        let _, peak =
          List.fold_left
            (fun (level, peak) d ->
              Obs.gauge_add t "g" d;
              let level = level + d in
              (level, max peak level))
            (0, 0) deltas
        in
        Obs.gauge_level t "g" = List.fold_left ( + ) 0 deltas
        && Obs.gauge_peak t "g" = peak);
    Test.make ~name:"span nesting: peak depth = requested depth" ~count:100
      (int_range 0 30)
      (fun depth ->
        let t = Obs.create () in
        let rec nest d =
          if d = 0 then Obs.span_depth t
          else Obs.with_span t "n" (fun () -> nest (d - 1))
        in
        let innermost = nest depth in
        innermost = depth
        && Obs.span_depth t = 0
        && Obs.count t "span.n" = depth
        && Obs.gauge_peak t "span.depth" = depth);
    Test.make ~name:"merge agrees with recording into one sink" ~count:200
      (pair (small_list small_nat) (small_list small_nat))
      (fun (xs, ys) ->
        let one = Obs.create () in
        List.iter (Obs.add one "c") (xs @ ys);
        List.iter (Obs.gauge_add one "g") (xs @ ys);
        let a = Obs.create () and b = Obs.create () in
        List.iter (Obs.add a "c") xs;
        List.iter (Obs.gauge_add a "g") xs;
        List.iter (Obs.add b "c") ys;
        List.iter (Obs.gauge_add b "g") ys;
        let peak_a = Obs.gauge_peak a "g" and peak_b = Obs.gauge_peak b "g" in
        Obs.merge ~into:a b;
        (* Counters and levels agree exactly; the merged peak is the max
           of the per-sink peaks — possibly lower than the single-sink
           peak, because b restarts from level 0, but never higher. *)
        Obs.count a "c" = Obs.count one "c"
        && Obs.gauge_level a "g" = Obs.gauge_level one "g"
        && Obs.gauge_peak a "g" <= Obs.gauge_peak one "g"
        && Obs.gauge_peak a "g" = max peak_a peak_b);
  ]
  @
  (* merge is commutative and associative up to everything a sink can
     report — including span counters and gauges driven negative.
     [merge] mutates its [into] argument, so every comparison rebuilds
     its sinks from the generated scripts. *)
  let script =
    QCheck.(
      small_list
        (oneof
           [
             map (fun n -> `Add n) small_nat;
             map (fun d -> `Gauge d) (int_range (-50) 50);
             map (fun v -> `Observe v) (int_range 0 100);
             oneofl [ `Span ];
           ]))
  in
  let build ops =
    let t = Obs.create () in
    List.iter
      (function
        | `Add n -> Obs.add t "c" n
        | `Gauge d -> Obs.gauge_add t "g" d
        | `Observe v -> Obs.gauge_observe t "w" v
        | `Span -> Obs.with_span t "s" (fun () -> Obs.gauge_add t "g" (-1)))
      ops;
    t
  in
  let observe t =
    (Obs.snapshot t, Obs.gauge_level t "g", Obs.gauge_level t "w")
  in
  let open QCheck in
  [
    Test.make ~name:"merge is commutative on spans and negative gauges"
      ~count:200 (pair script script)
      (fun (sa, sb) ->
        let ab =
          let a = build sa and b = build sb in
          Obs.merge ~into:a b;
          observe a
        in
        let ba =
          let a = build sa and b = build sb in
          Obs.merge ~into:b a;
          observe b
        in
        ab = ba);
    Test.make ~name:"merge is associative on spans and negative gauges"
      ~count:200
      (triple script script script)
      (fun (sa, sb, sc) ->
        let left =
          let a = build sa and b = build sb and c = build sc in
          Obs.merge ~into:a b;
          Obs.merge ~into:a c;
          observe a
        in
        let right =
          let a = build sa and b = build sb and c = build sc in
          Obs.merge ~into:b c;
          Obs.merge ~into:a b;
          observe a
        in
        left = right);
    Test.make ~name:"merging an empty sink is the identity" ~count:200 script
      (fun s ->
        let a = build s in
        let before = observe a in
        Obs.merge ~into:a (Obs.create ());
        observe a = before);
  ]

let suite =
  [
    ("counter basics", `Quick, test_counter_basics);
    ("gauge interleaved alloc/free", `Quick, test_gauge_interleaved);
    ("gauge observe", `Quick, test_gauge_observe);
    ("span nesting", `Quick, test_span_nesting);
    ("span exception safety", `Quick, test_span_exception_safe);
    ("snapshot sorted", `Quick, test_snapshot_sorted_and_peaks);
    ("merge semantics", `Quick, test_merge_semantics);
    ("scope install/restore", `Quick, test_scope_install_restore);
    ("scope exception safety", `Quick, test_scope_restores_on_exception);
    ("parallel bridge", `Quick, test_parallel_bridge_domain_independent);
    ("instrumented run identical", `Quick, test_instrumented_run_identical);
    ("registry resources", `Quick, test_registry_resources);
    ("registry parallel = sequential", `Quick, test_registry_parallel_vs_sequential);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
