(* Property tests for Mathx.Parallel: the seed-determinism contract
   (results independent of the domain count), agreement with sequential
   folds, and the documented edge cases. *)

open Mathx

let qtest = QCheck_alcotest.to_alcotest

let prop_domain_count_invariant =
  QCheck.Test.make ~name:"map_chunks: domains:1 = domains:4 on the same seed"
    ~count:50
    QCheck.(pair small_nat (int_bound 40))
    (fun (seed, chunks) ->
      let run domains =
        Parallel.map_chunks ~domains ~chunks
          (fun ~chunk ~rng -> (chunk, Rng.int rng 1_000_000, Rng.float rng))
          ~rng:(Rng.create seed)
      in
      run 1 = run 4)

let prop_chunk_order =
  QCheck.Test.make ~name:"map_chunks: results arrive in chunk order" ~count:30
    QCheck.(int_bound 60)
    (fun chunks ->
      Parallel.map_chunks ~chunks (fun ~chunk ~rng:_ -> chunk)
        ~rng:(Rng.create 1)
      = List.init chunks Fun.id)

let prop_count_successes_matches_fold =
  QCheck.Test.make
    ~name:"count_successes = sequential fold over in-order splits" ~count:50
    QCheck.(pair small_nat (int_bound 60))
    (fun (seed, trials) ->
      let f rng = Rng.int rng 10 < 3 in
      let parallel =
        Parallel.count_successes ~domains:4 ~trials f ~rng:(Rng.create seed)
      in
      let sequential =
        let rng = Rng.create seed in
        let hits = ref 0 in
        for _ = 1 to trials do
          if f (Rng.split rng) then incr hits
        done;
        !hits
      in
      parallel = sequential)

let check_int = Alcotest.(check int)

let test_zero_chunks () =
  Alcotest.(check (list int)) "chunks:0 is []" []
    (Parallel.map_chunks ~chunks:0 (fun ~chunk ~rng:_ -> chunk)
       ~rng:(Rng.create 7));
  (* ...and consumes no randomness: the caller's stream is untouched. *)
  let a = Rng.create 7 and b = Rng.create 7 in
  ignore (Parallel.map_chunks ~chunks:0 (fun ~chunk ~rng:_ -> chunk) ~rng:a);
  check_int "rng untouched" (Rng.int b 1000) (Rng.int a 1000)

let test_zero_domains () =
  let run domains =
    Parallel.map_chunks ~domains ~chunks:9
      (fun ~chunk ~rng -> (chunk, Rng.int rng 100))
      ~rng:(Rng.create 3)
  in
  Alcotest.(check bool) "domains:0 behaves like domains:1" true (run 0 = run 1)

let test_negative_chunks () =
  Alcotest.check_raises "negative chunks rejected"
    (Invalid_argument "Parallel.map_chunks: negative chunk count") (fun () ->
      ignore
        (Parallel.map_chunks ~chunks:(-1) (fun ~chunk ~rng:_ -> chunk)
           ~rng:(Rng.create 1)))

let test_negative_trials () =
  Alcotest.check_raises "negative trials rejected"
    (Invalid_argument "Parallel.count_successes: negative trials") (fun () ->
      ignore
        (Parallel.count_successes ~trials:(-2) (fun _ -> true)
           ~rng:(Rng.create 1)))

let test_zero_trials () =
  check_int "trials:0 counts 0" 0
    (Parallel.count_successes ~trials:0 (fun _ -> true) ~rng:(Rng.create 1))

let suite =
  [
    qtest prop_domain_count_invariant;
    qtest prop_chunk_order;
    qtest prop_count_successes_matches_fold;
    ("chunks:0", `Quick, test_zero_chunks);
    ("domains:0", `Quick, test_zero_domains);
    ("negative chunks", `Quick, test_negative_chunks);
    ("negative trials", `Quick, test_negative_trials);
    ("trials:0", `Quick, test_zero_trials);
  ]
