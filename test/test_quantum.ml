(* Tests for the state-vector simulator: gate algebra, state evolution
   cross-checked against dense unitaries, measurement semantics, and the
   per-address fast paths procedure A3 relies on. *)

open Mathx
open Quantum

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- gates *)

let test_named_gates_unitary () =
  List.iter
    (fun (name, g) -> check name true (Gates.is_unitary g))
    [
      ("id", Gates.id); ("h", Gates.h); ("x", Gates.x); ("y", Gates.y);
      ("z", Gates.z); ("s", Gates.s); ("sdg", Gates.sdg); ("t", Gates.t);
      ("tdg", Gates.tdg); ("rz", Gates.rz 0.7); ("phase", Gates.phase 1.3);
    ]

let test_gate_identities () =
  check "H^2 = I" true (Gates.approx_equal (Gates.compose Gates.h Gates.h) Gates.id);
  check "T^2 = S" true (Gates.approx_equal (Gates.compose Gates.t Gates.t) Gates.s);
  check "S^2 = Z" true (Gates.approx_equal (Gates.compose Gates.s Gates.s) Gates.z);
  check "T Tdg = I" true (Gates.approx_equal (Gates.compose Gates.t Gates.tdg) Gates.id);
  check "HZH = X" true
    (Gates.approx_equal (Gates.compose Gates.h (Gates.compose Gates.z Gates.h)) Gates.x);
  let t7 =
    List.fold_left (fun acc _ -> Gates.compose Gates.t acc) Gates.id
      (List.init 7 Fun.id)
  in
  check "T^7 = Tdg" true (Gates.approx_equal t7 Gates.tdg)

let test_equal_up_to_phase () =
  let minus_x = Gates.compose Gates.z (Gates.compose Gates.x Gates.z) in
  (* ZXZ = -X *)
  check "ZXZ != X exactly" false (Gates.approx_equal minus_x Gates.x);
  check "ZXZ = X up to phase" true (Gates.equal_up_to_phase minus_x Gates.x);
  check "H != X up to phase" false (Gates.equal_up_to_phase Gates.h Gates.x)

(* ---------------------------------------------------------------- state *)

let test_initial_state () =
  let s = State.create 3 in
  checkf "amp |000>" 1.0 (State.probability s 0);
  checkf "norm" 1.0 (State.norm s);
  Alcotest.(check int) "dim" 8 (State.dim s)

let test_x_flips () =
  let s = State.create 2 in
  State.apply_gate1 s Gates.x 1;
  checkf "now |10>" 1.0 (State.probability s 2);
  State.apply_gate1 s Gates.x 0;
  checkf "now |11>" 1.0 (State.probability s 3)

let test_hadamard_uniform () =
  let s = State.create 4 in
  State.apply_hadamard_block s 0 4;
  for i = 0 to 15 do
    checkf "uniform" (1.0 /. 16.0) (State.probability s i)
  done;
  State.apply_hadamard_block s 0 4;
  checkf "H twice restores |0>" 1.0 (State.probability s 0)

let test_cnot_truthtable () =
  List.iter
    (fun (input, expected) ->
      let s = State.create 2 in
      if input land 1 = 1 then State.apply_gate1 s Gates.x 0;
      if input land 2 = 2 then State.apply_gate1 s Gates.x 1;
      State.apply_cnot s ~control:0 ~target:1;
      checkf (Printf.sprintf "cnot |%d>" input) 1.0 (State.probability s expected))
    [ (0, 0); (1, 3); (2, 2); (3, 1) ]

let test_bell_state () =
  let s = State.create 2 in
  State.apply_gate1 s Gates.h 0;
  State.apply_cnot s ~control:0 ~target:1;
  checkf "P(00)" 0.5 (State.probability s 0);
  checkf "P(11)" 0.5 (State.probability s 3);
  checkf "P(01)" 0.0 (State.probability s 1);
  checkf "P(1 on either qubit)" 0.5 (State.prob_qubit_one s 0)

let test_state_vs_unitary_random_circuit () =
  (* Apply a fixed sequence of gates both to the fast simulator and via
     dense matrices; amplitudes must agree. *)
  let n = 3 in
  let gates =
    [
      `G1 (Gates.h, 0); `G1 (Gates.t, 1); `C (2, 1); `G1 (Gates.x, 2);
      `C (0, 2); `G1 (Gates.s, 0); `C (1, 0); `G1 (Gates.h, 2);
    ]
  in
  let s = State.create n in
  let u = ref (Unitary.identity n) in
  List.iter
    (fun g ->
      match g with
      | `G1 (g1, q) ->
          State.apply_gate1 s g1 q;
          u := Unitary.mul (Unitary.of_gate1 n g1 q) !u
      | `C (c, t) ->
          State.apply_cnot s ~control:c ~target:t;
          u := Unitary.mul (Unitary.of_controlled1 n Gates.x ~control:c ~target:t) !u)
    gates;
  let via_matrix = Unitary.apply !u (State.create n) in
  check "state matches dense unitary" true (State.approx_equal s via_matrix ~eps:1e-9)

let test_controlled_gate_only_fires_on_control () =
  let s = State.create 2 in
  State.apply_controlled1 s Gates.x ~control:1 ~target:0;
  checkf "control 0: nothing" 1.0 (State.probability s 0);
  State.apply_gate1 s Gates.x 1;
  State.apply_controlled1 s Gates.x ~control:1 ~target:0;
  checkf "control 1: fires" 1.0 (State.probability s 3)

let test_phase_if_and_xor_if_vs_unitary () =
  let n = 3 in
  let pred idx = idx land 1 = 1 in
  let s = State.create n in
  State.apply_hadamard_block s 0 n;
  let reference = State.copy s in
  State.apply_phase_if s pred;
  let u = Unitary.of_diagonal n (fun i -> if pred i then Cplx.re (-1.0) else Cplx.one) in
  let expected = Unitary.apply u reference in
  check "phase_if = diagonal unitary" true (State.approx_equal s expected);
  (* xor_if on qubit 2 conditioned on low bit. *)
  let s2 = State.copy expected in
  State.apply_xor_if s2 (fun idx -> idx land 1 = 1) 2;
  let perm =
    Unitary.of_permutation n (fun i -> if i land 1 = 1 then i lxor 4 else i)
  in
  let expected2 = Unitary.apply perm expected in
  check "xor_if = permutation unitary" true (State.approx_equal s2 expected2)

let test_address_fast_paths_match_generic () =
  (* apply_xor_on_address == apply_xor_if with an equality predicate. *)
  let n = 5 and width = 3 in
  let rng = Rng.create 21 in
  for address = 0 to 7 do
    let s = State.create n in
    (* Random-ish state via a few gates. *)
    State.apply_hadamard_block s 0 n;
    State.apply_gate1 s (Gates.rz (Rng.float rng)) 2;
    State.apply_cnot s ~control:0 ~target:4;
    let generic = State.copy s in
    State.apply_xor_on_address s ~width ~address ~target:3 ();
    State.apply_xor_if generic (fun idx -> idx land 7 = address) 3;
    check "xor fast path" true (State.approx_equal s generic);
    (* Phase with a requirement bit. *)
    let s2 = State.copy s and generic2 = State.copy s in
    State.apply_phase_on_address s2 ~width ~address ~require:4 ();
    State.apply_phase_if generic2 (fun idx ->
        idx land 7 = address && idx land 16 <> 0);
    check "phase fast path" true (State.approx_equal s2 generic2);
    (* Xor with a requirement bit. *)
    let s3 = State.copy s and generic3 = State.copy s in
    State.apply_xor_on_address s3 ~width ~address ~require:4 ~target:3 ();
    State.apply_xor_if generic3
      (fun idx -> idx land 7 = address && idx land 16 <> 0)
      3;
    check "xor+require fast path" true (State.approx_equal s3 generic3)
  done

let test_fidelity () =
  let a = State.create 2 in
  let b = State.create 2 in
  checkf "identical states" 1.0 (State.fidelity a b);
  State.apply_gate1 b Gates.x 0;
  checkf "orthogonal states" 0.0 (State.fidelity a b);
  State.apply_gate1 b Gates.h 0;
  (* b = H X |0> = |-> on qubit 0: |<0|->|^2 = 1/2 *)
  checkf "half overlap" 0.5 (State.fidelity a b)

let test_measure_collapse () =
  let rng = Rng.create 33 in
  let s = State.create 2 in
  State.apply_gate1 s Gates.h 0;
  State.apply_cnot s ~control:0 ~target:1;
  let outcome = State.measure_qubit s rng 0 in
  (* After measuring one half of a Bell pair, the other is determined. *)
  let expected = if outcome then 3 else 0 in
  checkf "collapsed" 1.0 (State.probability s expected);
  checkf "norm preserved" 1.0 (State.norm s)

let test_measure_statistics () =
  let rng = Rng.create 77 in
  let ones = ref 0 and trials = 4000 in
  for _ = 1 to trials do
    let s = State.create 1 in
    State.apply_gate1 s Gates.h 0;
    if State.measure_qubit s rng 0 then incr ones
  done;
  let rate = float_of_int !ones /. float_of_int trials in
  check "about half" true (Float.abs (rate -. 0.5) < 0.05)

let test_sample_all_distribution () =
  let rng = Rng.create 55 in
  let s = State.create 2 in
  State.apply_gate1 s Gates.x 1;
  Alcotest.(check int) "deterministic sample" 2 (State.sample_all s rng);
  let counts = Array.make 4 0 in
  let s2 = State.create 2 in
  State.apply_hadamard_block s2 0 2;
  for _ = 1 to 4000 do
    let v = State.sample_all s2 rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> check "roughly uniform" true (abs (c - 1000) < 200)) counts

let test_distribution_sums_to_one () =
  let s = State.create 4 in
  State.apply_hadamard_block s 0 4;
  State.apply_gate1 s (Gates.rz 0.3) 1;
  let total = Array.fold_left ( +. ) 0.0 (State.distribution s) in
  checkf "sums to 1" 1.0 total

let test_basis_and_reset () =
  let s = State.basis 3 5 in
  checkf "basis mass" 1.0 (State.probability s 5);
  State.apply_gate1 s Gates.h 0;
  State.reset_basis s 2;
  checkf "reset mass" 1.0 (State.probability s 2);
  checkf "reset cleared" 0.0 (State.probability s 5);
  check "bad index" true
    (match State.basis 2 4 with exception Invalid_argument _ -> true | _ -> false)

let test_full_width_phase_oracle () =
  (* Regression: [width = nqubits] with no require qubit is the
     full-register oracle (flip the phase of one basis state) and used
     to be rejected by the shared address guard. *)
  let n = 4 in
  let s = State.create n in
  State.apply_hadamard_block s 0 n;
  let reference = State.copy s in
  State.apply_phase_on_address s ~width:n ~address:9 ();
  State.apply_phase_if reference (fun idx -> idx = 9);
  check "flips exactly |address>" true (State.approx_equal s reference);
  (* A require qubit (or xor target) still cannot fit above a
     full-width address. *)
  check "full width + require rejected" true
    (match State.apply_phase_on_address s ~width:n ~address:0 ~require:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "full width xor rejected" true
    (match State.apply_xor_on_address s ~width:n ~address:0 ~target:3 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sample_all_zero_tail () =
  (* Regression: when the cumulative probability falls short of the
     draw, the sampler must fall back to the largest index with nonzero
     probability — never to a zero-mass basis state like dim-1. *)
  let amps = Array.make 8 Cplx.zero in
  amps.(2) <- Cplx.re 0.4;
  (* total mass 0.16: most draws overshoot the cumulative sum *)
  let s = State.of_amplitudes amps in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check int) "largest nonzero index" 2 (State.sample_all s rng)
  done

let test_backend_paths_bit_identical () =
  (* The parallel chunked path and the plain sequential path must agree
     bit for bit — the determinism contract behind run-all --check. *)
  let saved = State.parallel_threshold () in
  Fun.protect
    ~finally:(fun () -> State.set_parallel_threshold saved)
    (fun () ->
      let run () =
        let s = State.create 15 in
        State.apply_hadamard_block s 0 15;
        State.apply_gate1 s (Gates.rz 0.37) 3;
        State.apply_controlled1 s Gates.t ~control:2 ~target:9;
        State.apply_cnot s ~control:14 ~target:0;
        State.apply_phase_if s (fun idx -> idx land 5 = 5);
        State.apply_xor_if s (fun idx -> idx land 3 = 1) 7;
        State.apply_xor_on_address s ~width:4 ~address:11 ~target:8 ();
        State.apply_phase_on_address s ~width:4 ~address:7 ~require:6 ();
        let n1 = State.norm s in
        let p1 = State.prob_qubit_one s 5 in
        let m = State.measure_qubit s (Rng.create 7) 9 in
        (s, n1, p1, m)
      in
      State.set_parallel_threshold max_int;
      let seq, nrm_s, p_s, m_s = run () in
      State.set_parallel_threshold 0;
      let par, nrm_p, p_p, m_p = run () in
      let ok = ref true in
      for i = 0 to State.dim seq - 1 do
        if State.re seq i <> State.re par i || State.im seq i <> State.im par i
        then ok := false
      done;
      check "amplitudes bit-identical" true !ok;
      check "norm bit-identical" true (nrm_s = nrm_p);
      check "prob bit-identical" true (p_s = p_p);
      check "measurement identical" true (m_s = m_p))

let test_of_amplitudes_guard () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "State.of_amplitudes: length must be a power of two")
    (fun () -> ignore (State.of_amplitudes (Array.make 3 Cplx.zero)))

(* -------------------------------------------------------------- unitary *)

let test_unitary_constructors () =
  check "H unitary" true (Unitary.is_unitary (Unitary.of_gate1 2 Gates.h 0));
  check "CX unitary" true
    (Unitary.is_unitary (Unitary.of_controlled1 2 Gates.x ~control:0 ~target:1));
  check "perm unitary" true
    (Unitary.is_unitary (Unitary.of_permutation 3 (fun i -> (i + 3) mod 8)));
  check "diag unitary" true
    (Unitary.is_unitary
       (Unitary.of_diagonal 2 (fun i -> Cplx.polar 1.0 (float_of_int i))));
  Alcotest.check_raises "non-bijection rejected"
    (Invalid_argument "Unitary.of_permutation: not a bijection") (fun () ->
      ignore (Unitary.of_permutation 2 (fun _ -> 0)))

let test_unitary_phase_equality () =
  let u = Unitary.of_gate1 2 Gates.x 0 in
  let minus_u =
    Unitary.mul (Unitary.of_diagonal 2 (fun _ -> Cplx.re (-1.0))) u
  in
  check "differ exactly" false (Unitary.approx_equal u minus_u);
  check "equal up to phase" true (Unitary.equal_up_to_phase u minus_u)

let test_unitary_adjoint_inverse () =
  let u =
    Unitary.mul
      (Unitary.of_gate1 2 Gates.t 1)
      (Unitary.of_controlled1 2 Gates.x ~control:1 ~target:0)
  in
  check "U U* = I" true
    (Unitary.approx_equal (Unitary.mul u (Unitary.adjoint u)) (Unitary.identity 2))

(* ----------------------------------------------------------- properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random 1q gate words preserve norm" ~count:100
      (list_of_size (Gen.int_range 1 20) (int_bound 5))
      (fun word ->
        let s = State.create 3 in
        List.iteri
          (fun i g ->
            let q = i mod 3 in
            match g with
            | 0 -> State.apply_gate1 s Gates.h q
            | 1 -> State.apply_gate1 s Gates.t q
            | 2 -> State.apply_gate1 s Gates.x q
            | 3 -> State.apply_gate1 s Gates.s q
            | 4 -> State.apply_cnot s ~control:q ~target:((q + 1) mod 3)
            | _ -> State.apply_gate1 s Gates.z q)
          word;
        Float.abs (State.norm s -. 1.0) < 1e-9);
    Test.make ~name:"phase_if twice is identity" ~count:50
      (int_bound 255)
      (fun mask ->
        let s = State.create 4 in
        State.apply_hadamard_block s 0 4;
        let reference = State.copy s in
        let pred idx = idx land mask <> 0 in
        State.apply_phase_if s pred;
        State.apply_phase_if s pred;
        State.approx_equal s reference);
    Test.make ~name:"xor_if twice is identity" ~count:50
      (int_bound 7)
      (fun low ->
        let s = State.create 4 in
        State.apply_hadamard_block s 0 4;
        State.apply_gate1 s (Gates.rz 0.4) 1;
        let reference = State.copy s in
        let pred idx = idx land 7 = low in
        State.apply_xor_if s pred 3;
        State.apply_xor_if s pred 3;
        State.approx_equal s reference);
  ]

let suite =
  [
    ("gates unitary", `Quick, test_named_gates_unitary);
    ("gate identities", `Quick, test_gate_identities);
    ("equal up to phase", `Quick, test_equal_up_to_phase);
    ("initial state", `Quick, test_initial_state);
    ("x flips", `Quick, test_x_flips);
    ("hadamard uniform", `Quick, test_hadamard_uniform);
    ("cnot truth table", `Quick, test_cnot_truthtable);
    ("bell state", `Quick, test_bell_state);
    ("state vs dense unitary", `Quick, test_state_vs_unitary_random_circuit);
    ("controlled fires on control", `Quick, test_controlled_gate_only_fires_on_control);
    ("phase_if/xor_if vs unitary", `Quick, test_phase_if_and_xor_if_vs_unitary);
    ("address fast paths", `Quick, test_address_fast_paths_match_generic);
    ("fidelity", `Quick, test_fidelity);
    ("measurement collapse", `Quick, test_measure_collapse);
    ("measurement statistics", `Quick, test_measure_statistics);
    ("sample_all", `Quick, test_sample_all_distribution);
    ("distribution normalised", `Quick, test_distribution_sums_to_one);
    ("of_amplitudes guard", `Quick, test_of_amplitudes_guard);
    ("basis and reset_basis", `Quick, test_basis_and_reset);
    ("full-width phase oracle", `Quick, test_full_width_phase_oracle);
    ("sample_all zero tail", `Quick, test_sample_all_zero_tail);
    ("backend paths bit-identical", `Quick, test_backend_paths_bit_identical);
    ("unitary constructors", `Quick, test_unitary_constructors);
    ("unitary phase equality", `Quick, test_unitary_phase_equality);
    ("unitary adjoint inverse", `Quick, test_unitary_adjoint_inverse);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
