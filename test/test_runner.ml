(* CLI-level coverage for the parallel experiment runner: --only
   filtering, JSON determinism across parallel/sequential execution, and
   the --check regression gate, exercised through the same library calls
   the binary makes (on --quick settings). *)

open Experiments

let check = Alcotest.(check bool)
let seed = 424242

(* Cheap experiments only: e2/e5/e13 finish in milliseconds on quick. *)
let only = [ "e2"; "e5"; "e13" ]
let run ?sequential () = Registry.results ~quick:true ~seed ?sequential ~only ()

let doc results = Json.to_string (Json.of_results ~seed ~quick:true results)

let test_only_order () =
  (* Catalogue order is preserved regardless of the order given. *)
  let rs = Registry.results ~quick:true ~seed ~only:[ "e13"; "e2" ] () in
  Alcotest.(check (list string)) "catalogue order" [ "e2"; "e13" ]
    (List.map (fun (r : Report.t) -> r.Report.id) rs)

let test_only_unknown () =
  check "unknown id raises before any work" true
    (match Registry.results ~quick:true ~seed ~only:[ "e2"; "e99" ] () with
    | exception Not_found -> true
    | _ -> false)

let test_json_deterministic () =
  Alcotest.(check string) "two runs, same bytes" (doc (run ())) (doc (run ()))

let test_parallel_equals_sequential () =
  Alcotest.(check string) "parallel = sequential, same bytes"
    (doc (run ~sequential:true ()))
    (doc (run ()))

let test_results_shape () =
  List.iter
    (fun (r : Report.t) ->
      check (r.Report.id ^ " has a table") true (r.Report.body.Report.tables <> []);
      check (r.Report.id ^ " wall-clock recorded") true (r.Report.wall_ms >= 0.0);
      Alcotest.(check int) (r.Report.id ^ " seed recorded") seed r.Report.seed;
      List.iter
        (fun (tb : Report.table) ->
          List.iter
            (fun row ->
              Alcotest.(check int)
                (r.Report.id ^ " row arity")
                (List.length tb.Report.header)
                (List.length row))
            tb.Report.rows)
        r.Report.body.Report.tables)
    (run ())

let test_check_roundtrip () =
  let current = Json.of_results ~seed ~quick:true (run ()) in
  Alcotest.(check (list string)) "self-baseline passes" []
    (Json.diff ~tolerance:0.0 current current)

(* Multiply the first float leaf found by 1.5: a perturbed baseline. *)
let rec perturb = function
  | Json.Float f -> (Json.Float (f *. 1.5), true)
  | Json.Int i when i > 0 -> (Json.Int (i * 2), true)
  | Json.List items ->
      let items, changed =
        List.fold_left
          (fun (acc, changed) item ->
            if changed then (item :: acc, true)
            else
              let item, changed = perturb item in
              (item :: acc, changed))
          ([], false) items
      in
      (Json.List (List.rev items), changed)
  | Json.Obj fields ->
      let fields, changed =
        List.fold_left
          (fun (acc, changed) (k, v) ->
            if changed then ((k, v) :: acc, true)
            else
              let v, changed = perturb v in
              ((k, v) :: acc, changed))
          ([], false) fields
      in
      (Json.Obj (List.rev fields), changed)
  | v -> (v, false)

let test_check_detects_perturbation () =
  let current = Json.of_results ~seed ~quick:true (run ()) in
  let perturbed, changed = perturb current in
  check "found a numeric cell to perturb" true changed;
  check "perturbed baseline fails" true
    (Json.diff ~tolerance:5.0 perturbed current <> [])

let test_timing_flag_checks_cleanly () =
  (* A baseline written with --timing still gates a run without it. *)
  let results = run () in
  let with_timing = Json.of_results ~timing:true ~seed ~quick:true results in
  let without = Json.of_results ~seed ~quick:true results in
  Alcotest.(check (list string)) "wall_ms never compared" []
    (Json.diff ~tolerance:0.0 with_timing without)

let suite =
  [
    ("--only preserves catalogue order", `Quick, test_only_order);
    ("--only rejects unknown ids", `Quick, test_only_unknown);
    ("json deterministic across runs", `Quick, test_json_deterministic);
    ("parallel = sequential bytes", `Quick, test_parallel_equals_sequential);
    ("result shapes", `Quick, test_results_shape);
    ("--check self-baseline passes", `Quick, test_check_roundtrip);
    ("--check flags perturbation", `Quick, test_check_detects_perturbation);
    ("--timing baseline compatible", `Quick, test_timing_flag_checks_cleanly);
  ]
