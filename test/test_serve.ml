(* Serve subsystem coverage: the strict protocol codec (qcheck round
   trips plus every documented rejection), the length-prefixed frame
   codec, the bounded admission queue, the batching/backpressure engine,
   and the central contract — a served run/sweep payload survives the
   full wire round trip byte-identical to the one-shot CLI document. *)

module Json = Experiments.Json
module Protocol = Serve.Protocol
module Server = Serve.Server

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let encode_request req = Protocol.to_line (Protocol.request_to_json req)
let encode_reply reply = Protocol.to_line (Protocol.reply_to_json reply)

let decode_reply line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "reply line is not JSON: %s" msg
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Error msg -> Alcotest.failf "reply rejected: %s" msg
      | Ok reply -> reply)

let expect_decode_error ~code line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "accepted %S (wanted %s)" line (Protocol.code_to_string code)
  | Error err ->
      check_str
        (Printf.sprintf "%S rejected with" line)
        (Protocol.code_to_string code)
        (Protocol.code_to_string err.Protocol.code);
      err

(* ---------------------------------------------------- request codec *)

let id_gen =
  let chars =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
  in
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 16)
         (map (fun i -> chars.[i]) (int_bound (String.length chars - 1)))))

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun exp quick seed -> Protocol.Run { exp; quick; seed })
            (oneofl Experiments.Registry.ids)
            bool (int_bound 100_000) );
        ( 3,
          map3
            (fun (index, count) quick seed ->
              Protocol.Sweep { index; count; quick; seed })
            (map
               (fun (count, i) -> (i mod count, count))
               (pair (int_range 1 9) (int_bound 100)))
            bool (int_bound 100_000) );
        (1, return Protocol.Ping);
        (1, return Protocol.Stats);
        (1, return Protocol.Shutdown);
      ])

let request_gen =
  QCheck.Gen.map2 (fun id op -> { Protocol.id; op }) id_gen op_gen

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec: decode (encode r) = r" ~count:300
    (QCheck.make request_gen) (fun req ->
      match Protocol.parse_line (encode_request req) with
      | Ok req' ->
          req' = req
          ||
          QCheck.Test.fail_reportf "round trip changed the request: %s"
            (encode_request req')
      | Error { Protocol.message; _ } ->
          QCheck.Test.fail_reportf "own encoding rejected: %s" message)

let code_gen =
  QCheck.Gen.oneofl
    [
      Protocol.Parse_error;
      Protocol.Bad_request;
      Protocol.Unsupported_version;
      Protocol.Unknown_op;
      Protocol.Unknown_experiment;
      Protocol.Bad_shard;
      Protocol.Queue_full;
      Protocol.Frame_error;
      Protocol.Internal_error;
    ]

(* wall_ms from n/8 is exactly representable, so the float survives the
   emitter round trip bit-for-bit. *)
let reply_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun id n op ->
              Protocol.Ok_reply
                {
                  id;
                  op;
                  payload =
                    Json.Obj [ ("n", Json.Int n); ("s", Json.Str "x\"\\y") ];
                  wall_ms = float_of_int n /. 8.0;
                } )
            id_gen (int_bound 10_000)
            (oneofl [ "run"; "sweep"; "ping"; "stats"; "shutdown" ]) );
        ( 2,
          map3
            (fun id code msg -> Protocol.Error_reply { id; code; message = msg })
            (opt id_gen) code_gen
            (oneofl [ "boom"; "queue is full"; "k\ne\ty" ]) );
      ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply codec: wire bytes are a fixed point" ~count:300
    (QCheck.make reply_gen) (fun reply ->
      let line = encode_reply reply in
      let reply' = decode_reply line in
      reply' = reply
      && String.equal (encode_reply reply') line
      ||
      QCheck.Test.fail_reportf "round trip drifted: %s vs %s" line
        (encode_reply reply'))

(* ------------------------------------------------- strict rejections *)

let test_rejects_malformed () =
  let err = expect_decode_error ~code:Protocol.Parse_error "{nope" in
  check "no id recovered from garbage" true (err.Protocol.id = None)

let test_rejects_unknown_version () =
  let err =
    expect_decode_error ~code:Protocol.Unsupported_version
      {|{"v":2,"id":"q","op":"ping"}|}
  in
  check "id recovered for the reply" true (err.Protocol.id = Some "q")

let test_rejects_unknown_op () =
  ignore
    (expect_decode_error ~code:Protocol.Unknown_op
       {|{"v":1,"id":"q","op":"dance"}|})

let test_rejects_unknown_experiment () =
  ignore
    (expect_decode_error ~code:Protocol.Unknown_experiment
       {|{"v":1,"id":"q","op":"run","exp":"e99"}|})

let test_rejects_bad_shard () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_shard
       {|{"v":1,"id":"q","op":"sweep","index":5,"of":5}|});
  ignore
    (expect_decode_error ~code:Protocol.Bad_shard
       {|{"v":1,"id":"q","op":"sweep","index":0,"of":0}|})

let test_rejects_undocumented_request_key () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_request
       {|{"v":1,"id":"q","op":"ping","extra":true}|})

let test_rejects_bad_id () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_request
       {|{"v":1,"id":"spa ce","op":"ping"}|});
  ignore
    (expect_decode_error ~code:Protocol.Bad_request {|{"v":1,"id":"","op":"ping"}|})

let expect_reply_rejected line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "fixture is not JSON: %s" msg
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Ok _ -> Alcotest.failf "reply %S should be rejected" line
      | Error _ -> ())

let test_rejects_undocumented_reply_key () =
  expect_reply_rejected
    {|{"id":"a","ok":true,"op":"ping","payload":{},"v":1,"wall_ms":1.0,"zzz":1}|};
  expect_reply_rejected
    {|{"error":{"code":"queue_full","message":"m","hint":"h"},"id":"a","ok":false,"v":1}|};
  expect_reply_rejected
    {|{"error":{"code":"not_a_code","message":"m"},"id":"a","ok":false,"v":1}|};
  expect_reply_rejected
    {|{"id":"a","ok":true,"op":"ping","payload":{},"v":2,"wall_ms":1.0}|}

(* ------------------------------------------------------------ frames *)

let with_frame_file bodies read =
  let path = Filename.temp_file "oqsc_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          List.iter (Protocol.write_frame oc) bodies);
      In_channel.with_open_bin path read)

let test_frame_roundtrip () =
  let bodies = [ ""; "x"; String.make 4096 'q'; "{\"v\":1}" ] in
  with_frame_file bodies (fun ic ->
      List.iter
        (fun body ->
          match Protocol.read_frame ic with
          | Ok (Some b) -> check_str "frame body" body b
          | Ok None -> Alcotest.fail "premature EOF"
          | Error msg -> Alcotest.failf "framing error: %s" msg)
        bodies;
      match Protocol.read_frame ic with
      | Ok None -> ()
      | _ -> Alcotest.fail "clean EOF should be Ok None")

let test_frame_violations () =
  (* Oversized declared length. *)
  let path = Filename.temp_file "oqsc_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 0x7fff_ffffl;
          output_bytes oc header);
      In_channel.with_open_bin path (fun ic ->
          match Protocol.read_frame ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "oversized frame should be an error"));
  (* EOF in the middle of a declared body. *)
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 10l;
          output_bytes oc header;
          output_string oc "abc");
      In_channel.with_open_bin path (fun ic ->
          match Protocol.read_frame ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "truncated frame should be an error"));
  match
    with_frame_file [] (fun _ ->
        Protocol.write_frame stderr (String.make (Protocol.max_frame + 1) 'x'))
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlong body should raise Invalid_argument"

(* ------------------------------------------------------------- queue *)

let test_queue_fifo () =
  let q = Serve.Queue.create ~capacity:3 in
  check_int "capacity" 3 (Serve.Queue.capacity q);
  check "empty" true (Serve.Queue.is_empty q);
  check "admit 1" true (Serve.Queue.admit q 1);
  check "admit 2" true (Serve.Queue.admit q 2);
  check "admit 3" true (Serve.Queue.admit q 3);
  check "full" false (Serve.Queue.admit q 4);
  check_int "peak at capacity" 3 (Serve.Queue.peak q);
  Alcotest.(check (list int)) "FIFO drain" [ 1; 2; 3 ] (Serve.Queue.drain q);
  check "empty after drain" true (Serve.Queue.is_empty q);
  check "admit after drain" true (Serve.Queue.admit q 5);
  Alcotest.(check (list int)) "second drain" [ 5 ] (Serve.Queue.drain q);
  check_int "peak survives drains" 3 (Serve.Queue.peak q);
  match Serve.Queue.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 should raise"

(* ------------------------------------------------------------ engine *)

let submit_line t line = Server.submit_line t line

let reply_id = function
  | Protocol.Ok_reply { id; _ } -> id
  | Protocol.Error_reply { id; _ } -> Option.value ~default:"<null>" id

let run_line ?(seed = 2006) id exp =
  Printf.sprintf {|{"v":1,"id":"%s","op":"run","exp":"%s","quick":true,"seed":%d}|}
    id exp seed

let test_batch_flush_order () =
  let t = Server.create ~capacity:8 ~batch:3 ~domains:2 () in
  let o1 = submit_line t (run_line "r1" "e2") in
  let o2 = submit_line t (run_line "r2" "e13") in
  check "admission is silent" true (o1.Server.replies = [] && o2.Server.replies = []);
  let o3 = submit_line t (run_line "r3" "e2") in
  Alcotest.(check (list string))
    "flush replies in admission order" [ "r1"; "r2"; "r3" ]
    (List.map reply_id o3.Server.replies);
  check "no stop" false o3.Server.stop

let test_control_barrier () =
  let t = Server.create ~capacity:8 ~batch:8 () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t {|{"v":1,"id":"p","op":"ping"}|} in
  Alcotest.(check (list string))
    "barrier flushes then answers" [ "r1"; "p" ]
    (List.map reply_id o.Server.replies)

let test_queue_full_backpressure () =
  (* batch > capacity: threshold flushes disabled, so the second
     admission must draw an immediate queue_full error reply. *)
  let t = Server.create ~capacity:1 ~batch:4 () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t (run_line "r2" "e13") in
  (match o.Server.replies with
  | [ Protocol.Error_reply { id = Some "r2"; code = Protocol.Queue_full; _ } ] -> ()
  | _ -> Alcotest.fail "wanted a queue_full error reply for r2");
  let o' = submit_line t {|{"v":1,"id":"s","op":"stats"}|} in
  Alcotest.(check (list string))
    "r1 still flushes at the barrier" [ "r1"; "s" ]
    (List.map reply_id o'.Server.replies);
  match List.rev o'.Server.replies with
  | Protocol.Ok_reply { payload = Json.Obj fields; _ } :: _ ->
      check "stats counts the rejection" true
        (List.assoc_opt "rejected" fields = Some (Json.Int 1))
  | _ -> Alcotest.fail "stats reply missing"

let test_error_reply_for_bad_line () =
  let t = Server.create () in
  let o = submit_line t {|{"v":1,"id":"q","op":"run","exp":"e99"}|} in
  match o.Server.replies with
  | [ Protocol.Error_reply { code = Protocol.Unknown_experiment; id = Some "q"; _ } ]
    ->
      check "bad line never stops the server" false o.Server.stop
  | _ -> Alcotest.fail "wanted unknown_experiment"

let test_stats_payload_keys () =
  let t = Server.create () in
  match Server.stats_payload t with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "exactly the documented stats keys"
        [
          "completed";
          "errors";
          "p50_ms";
          "p99_ms";
          "queue_capacity";
          "queue_peak";
          "rejected";
          "uptime_ms";
        ]
        (List.sort compare (List.map fst fields))
  | _ -> Alcotest.fail "stats payload must be an object"

let test_shutdown_stops () =
  let t = Server.create () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t {|{"v":1,"id":"z","op":"shutdown"}|} in
  check "stop" true o.Server.stop;
  Alcotest.(check (list string))
    "drains before stopping" [ "r1"; "z" ]
    (List.map reply_id o.Server.replies)

(* ----------------------------------------------- golden byte-identity *)

(* The contract CI re-checks against the real binaries: a served payload,
   after the full wire round trip (compact encode, strict decode),
   pretty-prints to the exact bytes of the one-shot CLI document. *)
let served_payload t line =
  let { Server.replies; _ } = submit_line t line in
  let o = submit_line t {|{"v":1,"id":"flush","op":"ping"}|} in
  match
    List.find_map
      (function
        | Protocol.Ok_reply { op = ("run" | "sweep"); _ } as r -> Some r
        | _ -> None)
      (replies @ o.Server.replies)
  with
  | None -> Alcotest.fail "no run/sweep reply"
  | Some reply -> (
      match decode_reply (encode_reply reply) with
      | Protocol.Ok_reply { payload; _ } -> Json.to_string payload
      | Protocol.Error_reply _ -> Alcotest.fail "round trip demoted the reply")

let test_run_payload_matches_oneshot () =
  let t = Server.create () in
  List.iter
    (fun (exp, seed) ->
      check_str
        (Printf.sprintf "served %s seed %d = run-all --only %s" exp seed exp)
        (Json.to_string (Experiments.Registry.document ~quick:true ~seed exp))
        (served_payload t (run_line ~seed "g" exp)))
    [ ("e2", 2006); ("e13", 7) ]

let test_sweep_payload_matches_oneshot () =
  let t = Server.create () in
  let shard = (0, 5) and seed = 2006 in
  let rows = Experiments.Space_audit.rows ~quick:true ~shard ~seed () in
  check_str "served sweep = space-audit --shard 0/5"
    (Json.to_string
       (Experiments.Space_audit.shard_to_json ~shard ~seed ~quick:true rows))
    (served_payload t {|{"v":1,"id":"g","op":"sweep","index":0,"of":5,"quick":true}|})

(* ------------------------------------------------------- bench-serve *)

let mix =
  [
    {|{"v":1,"id":"a","op":"ping"}|};
    run_line "b" "e2";
    {|{"v":1,"id":"c","op":"sweep","index":0,"of":5,"quick":true}|};
    {|{"v":1,"id":"d","op":"run","exp":"e99"}|};
  ]

let test_bench_replay_counts () =
  match Serve.Bench_serve.replay_in_process ~repeat:2 ~capacity:8 ~batch:2 mix with
  | Error msg -> Alcotest.failf "replay failed: %s" msg
  | Ok r ->
      check_int "requests" 8 r.Serve.Bench_serve.requests;
      check_int "replies" 8 r.Serve.Bench_serve.replies;
      check_int "ok" 6 r.Serve.Bench_serve.ok;
      check_int "errors" 2 r.Serve.Bench_serve.errors;
      check "stats payload captured" true
        (match r.Serve.Bench_serve.stats with
        | Json.Obj fields -> List.mem_assoc "p99_ms" fields
        | _ -> false)

let test_bench_rejects_shutdown_in_mix () =
  match
    Serve.Bench_serve.replay_in_process [ {|{"v":1,"id":"z","op":"shutdown"}|} ]
  with
  | Error msg ->
      check "message points at --shutdown" true
        (String.length msg > 0
        &&
        let nh = String.length msg and sub = "shutdown" in
        let nn = String.length sub in
        let rec at i = i + nn <= nh && (String.sub msg i nn = sub || at (i + 1)) in
        at 0)
  | Ok _ -> Alcotest.fail "mixes containing shutdown must be rejected"

let test_bench_rejects_reserved_ids () =
  match
    Serve.Bench_serve.replay_in_process [ {|{"v":1,"id":"bench.x","op":"ping"}|} ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bench.* ids are reserved"

let suite =
  [
    ("malformed line -> parse_error, id null", `Quick, test_rejects_malformed);
    ("unknown version -> unsupported_version", `Quick, test_rejects_unknown_version);
    ("unknown op -> unknown_op", `Quick, test_rejects_unknown_op);
    ("unknown experiment -> unknown_experiment", `Quick, test_rejects_unknown_experiment);
    ("shard bounds -> bad_shard", `Quick, test_rejects_bad_shard);
    ("undocumented request key -> bad_request", `Quick, test_rejects_undocumented_request_key);
    ("ill-formed id -> bad_request", `Quick, test_rejects_bad_id);
    ("undocumented reply key / code / version rejected", `Quick, test_rejects_undocumented_reply_key);
    ("frame codec round trip + clean EOF", `Quick, test_frame_roundtrip);
    ("frame violations: oversize, truncation, overlong body", `Quick, test_frame_violations);
    ("bounded queue: FIFO, capacity, peak", `Quick, test_queue_fifo);
    ("batch threshold flushes in admission order", `Quick, test_batch_flush_order);
    ("control requests are flush barriers", `Quick, test_control_barrier);
    ("queue_full backpressure, counted in stats", `Quick, test_queue_full_backpressure);
    ("request errors answer without stopping", `Quick, test_error_reply_for_bad_line);
    ("stats payload carries exactly the documented keys", `Quick, test_stats_payload_keys);
    ("shutdown drains then stops", `Quick, test_shutdown_stops);
    ("served run payload = one-shot document (via wire)", `Quick, test_run_payload_matches_oneshot);
    ("served sweep payload = one-shot shard (via wire)", `Quick, test_sweep_payload_matches_oneshot);
    ("bench replay: counts and stats capture", `Quick, test_bench_replay_counts);
    ("bench replay rejects shutdown in a mix", `Quick, test_bench_rejects_shutdown_in_mix);
    ("bench replay rejects reserved bench.* ids", `Quick, test_bench_rejects_reserved_ids);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_request_roundtrip; prop_reply_roundtrip ]
