(* Serve subsystem coverage: the strict protocol codec (qcheck round
   trips plus every documented rejection), the length-prefixed frame
   codec, the bounded admission queue, the batching/backpressure engine,
   and the central contract — a served run/sweep payload survives the
   full wire round trip byte-identical to the one-shot CLI document. *)

module Json = Experiments.Json
module Protocol = Serve.Protocol
module Server = Serve.Server

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let encode_request req = Protocol.to_line (Protocol.request_to_json req)
let encode_reply reply = Protocol.to_line (Protocol.reply_to_json reply)

let decode_reply line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "reply line is not JSON: %s" msg
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Error msg -> Alcotest.failf "reply rejected: %s" msg
      | Ok reply -> reply)

let expect_decode_error ~code line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "accepted %S (wanted %s)" line (Protocol.code_to_string code)
  | Error err ->
      check_str
        (Printf.sprintf "%S rejected with" line)
        (Protocol.code_to_string code)
        (Protocol.code_to_string err.Protocol.code);
      err

(* ---------------------------------------------------- request codec *)

let id_gen =
  let chars =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
  in
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 16)
         (map (fun i -> chars.[i]) (int_bound (String.length chars - 1)))))

let op_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun exp quick seed -> Protocol.Run { exp; quick; seed })
            (oneofl Experiments.Registry.ids)
            bool (int_bound 100_000) );
        ( 3,
          map3
            (fun (index, count) quick seed ->
              Protocol.Sweep { index; count; quick; seed })
            (map
               (fun (count, i) -> (i mod count, count))
               (pair (int_range 1 9) (int_bound 100)))
            bool (int_bound 100_000) );
        (1, return Protocol.Ping);
        (1, return Protocol.Stats);
        (1, return Protocol.Metrics);
        (1, return Protocol.Shutdown);
      ])

(* [metrics] only decodes at v2, so force its version up; every other
   op round-trips at either supported version. *)
let request_gen =
  QCheck.Gen.(
    map3
      (fun id op v ->
        let v =
          match op with Protocol.Metrics -> Protocol.metrics_version | _ -> v
        in
        { Protocol.v; id; op })
      id_gen op_gen
      (oneofl Protocol.versions))

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request codec: decode (encode r) = r" ~count:300
    (QCheck.make request_gen) (fun req ->
      match Protocol.parse_line (encode_request req) with
      | Ok req' ->
          req' = req
          ||
          QCheck.Test.fail_reportf "round trip changed the request: %s"
            (encode_request req')
      | Error { Protocol.message; _ } ->
          QCheck.Test.fail_reportf "own encoding rejected: %s" message)

let code_gen =
  QCheck.Gen.oneofl
    [
      Protocol.Parse_error;
      Protocol.Bad_request;
      Protocol.Unsupported_version;
      Protocol.Unknown_op;
      Protocol.Unknown_experiment;
      Protocol.Bad_shard;
      Protocol.Queue_full;
      Protocol.Frame_error;
      Protocol.Internal_error;
    ]

(* wall_ms from n/8 is exactly representable, so the float survives the
   emitter round trip bit-for-bit. *)
let reply_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun id n (op, v) ->
              Protocol.Ok_reply
                {
                  v;
                  id;
                  op;
                  payload =
                    Json.Obj [ ("n", Json.Int n); ("s", Json.Str "x\"\\y") ];
                  wall_ms = float_of_int n /. 8.0;
                } )
            id_gen (int_bound 10_000)
            (pair
               (oneofl [ "run"; "sweep"; "ping"; "stats"; "metrics"; "shutdown" ])
               (oneofl Protocol.versions)) );
        ( 2,
          map3
            (fun id (code, v) msg ->
              Protocol.Error_reply { v; id; code; message = msg })
            (opt id_gen)
            (pair code_gen (oneofl Protocol.versions))
            (oneofl [ "boom"; "queue is full"; "k\ne\ty" ]) );
      ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"reply codec: wire bytes are a fixed point" ~count:300
    (QCheck.make reply_gen) (fun reply ->
      let line = encode_reply reply in
      let reply' = decode_reply line in
      reply' = reply
      && String.equal (encode_reply reply') line
      ||
      QCheck.Test.fail_reportf "round trip drifted: %s vs %s" line
        (encode_reply reply'))

(* ------------------------------------------------- strict rejections *)

let test_rejects_malformed () =
  let err = expect_decode_error ~code:Protocol.Parse_error "{nope" in
  check "no id recovered from garbage" true (err.Protocol.id = None)

let test_rejects_unknown_version () =
  let err =
    expect_decode_error ~code:Protocol.Unsupported_version
      {|{"v":9,"id":"q","op":"ping"}|}
  in
  check "id recovered for the reply" true (err.Protocol.id = Some "q");
  check "unusable version answers at the baseline" true
    (err.Protocol.v = Protocol.version)

let test_rejects_unknown_op () =
  ignore
    (expect_decode_error ~code:Protocol.Unknown_op
       {|{"v":1,"id":"q","op":"dance"}|})

let test_rejects_unknown_experiment () =
  ignore
    (expect_decode_error ~code:Protocol.Unknown_experiment
       {|{"v":1,"id":"q","op":"run","exp":"e99"}|})

let test_rejects_bad_shard () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_shard
       {|{"v":1,"id":"q","op":"sweep","index":5,"of":5}|});
  ignore
    (expect_decode_error ~code:Protocol.Bad_shard
       {|{"v":1,"id":"q","op":"sweep","index":0,"of":0}|})

let test_rejects_undocumented_request_key () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_request
       {|{"v":1,"id":"q","op":"ping","extra":true}|})

let test_rejects_bad_id () =
  ignore
    (expect_decode_error ~code:Protocol.Bad_request
       {|{"v":1,"id":"spa ce","op":"ping"}|});
  ignore
    (expect_decode_error ~code:Protocol.Bad_request {|{"v":1,"id":"","op":"ping"}|})

let expect_reply_rejected line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "fixture is not JSON: %s" msg
  | Ok json -> (
      match Protocol.reply_of_json json with
      | Ok _ -> Alcotest.failf "reply %S should be rejected" line
      | Error _ -> ())

let test_rejects_undocumented_reply_key () =
  expect_reply_rejected
    {|{"id":"a","ok":true,"op":"ping","payload":{},"v":1,"wall_ms":1.0,"zzz":1}|};
  expect_reply_rejected
    {|{"error":{"code":"queue_full","message":"m","hint":"h"},"id":"a","ok":false,"v":1}|};
  expect_reply_rejected
    {|{"error":{"code":"not_a_code","message":"m"},"id":"a","ok":false,"v":1}|};
  expect_reply_rejected
    {|{"id":"a","ok":true,"op":"ping","payload":{},"v":9,"wall_ms":1.0}|}

(* ------------------------------------------------------------ frames *)

let with_frame_file bodies read =
  let path = Filename.temp_file "oqsc_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          List.iter (Protocol.write_frame oc) bodies);
      In_channel.with_open_bin path read)

let test_frame_roundtrip () =
  let bodies = [ ""; "x"; String.make 4096 'q'; "{\"v\":1}" ] in
  with_frame_file bodies (fun ic ->
      List.iter
        (fun body ->
          match Protocol.read_frame ic with
          | Ok (Some b) -> check_str "frame body" body b
          | Ok None -> Alcotest.fail "premature EOF"
          | Error msg -> Alcotest.failf "framing error: %s" msg)
        bodies;
      match Protocol.read_frame ic with
      | Ok None -> ()
      | _ -> Alcotest.fail "clean EOF should be Ok None")

let test_frame_violations () =
  (* Oversized declared length. *)
  let path = Filename.temp_file "oqsc_serve" ".frames" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 0x7fff_ffffl;
          output_bytes oc header);
      In_channel.with_open_bin path (fun ic ->
          match Protocol.read_frame ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "oversized frame should be an error"));
  (* EOF in the middle of a declared body. *)
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 10l;
          output_bytes oc header;
          output_string oc "abc");
      In_channel.with_open_bin path (fun ic ->
          match Protocol.read_frame ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "truncated frame should be an error"));
  match
    with_frame_file [] (fun _ ->
        Protocol.write_frame stderr (String.make (Protocol.max_frame + 1) 'x'))
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overlong body should raise Invalid_argument"

(* ------------------------------------------------------------- queue *)

let test_queue_fifo () =
  let q = Serve.Queue.create ~capacity:3 () in
  check_int "capacity" 3 (Serve.Queue.capacity q);
  check "empty" true (Serve.Queue.is_empty q);
  check "admit 1" true (Serve.Queue.admit q 1);
  check "admit 2" true (Serve.Queue.admit q 2);
  check "admit 3" true (Serve.Queue.admit q 3);
  check "full" false (Serve.Queue.admit q 4);
  check_int "peak at capacity" 3 (Serve.Queue.peak q);
  Alcotest.(check (list int)) "FIFO drain" [ 1; 2; 3 ] (Serve.Queue.drain q);
  check "empty after drain" true (Serve.Queue.is_empty q);
  check "admit after drain" true (Serve.Queue.admit q 5);
  Alcotest.(check (list int)) "second drain" [ 5 ] (Serve.Queue.drain q);
  check_int "peak survives drains" 3 (Serve.Queue.peak q);
  match Serve.Queue.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 should raise"

let test_queue_observe_hook () =
  let seen = ref [] in
  let q = Serve.Queue.create ~capacity:3 ~observe:(fun n -> seen := n :: !seen) () in
  ignore (Serve.Queue.admit q 1);
  ignore (Serve.Queue.admit q 2);
  ignore (Serve.Queue.admit q 3);
  check "full admit is not observed" false (Serve.Queue.admit q 4);
  ignore (Serve.Queue.drain q);
  ignore (Serve.Queue.drain q);
  Alcotest.(check (list int))
    "observed lengths: each admit, one nonempty drain" [ 1; 2; 3; 0 ]
    (List.rev !seen)

(* ------------------------------------------------------------ engine *)

let submit_line t line = Server.submit_line t line

let reply_id = function
  | Protocol.Ok_reply { id; _ } -> id
  | Protocol.Error_reply { id; _ } -> Option.value ~default:"<null>" id

let run_line ?(seed = 2006) id exp =
  Printf.sprintf {|{"v":1,"id":"%s","op":"run","exp":"%s","quick":true,"seed":%d}|}
    id exp seed

let test_batch_flush_order () =
  let t = Server.create ~capacity:8 ~batch:3 ~domains:2 () in
  let o1 = submit_line t (run_line "r1" "e2") in
  let o2 = submit_line t (run_line "r2" "e13") in
  check "admission is silent" true (o1.Server.replies = [] && o2.Server.replies = []);
  let o3 = submit_line t (run_line "r3" "e2") in
  Alcotest.(check (list string))
    "flush replies in admission order" [ "r1"; "r2"; "r3" ]
    (List.map reply_id o3.Server.replies);
  check "no stop" false o3.Server.stop

let test_control_barrier () =
  let t = Server.create ~capacity:8 ~batch:8 () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t {|{"v":1,"id":"p","op":"ping"}|} in
  Alcotest.(check (list string))
    "barrier flushes then answers" [ "r1"; "p" ]
    (List.map reply_id o.Server.replies)

let test_queue_full_backpressure () =
  (* batch > capacity: threshold flushes disabled, so the second
     admission must draw an immediate queue_full error reply. *)
  let t = Server.create ~capacity:1 ~batch:4 () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t (run_line "r2" "e13") in
  (match o.Server.replies with
  | [ Protocol.Error_reply { id = Some "r2"; code = Protocol.Queue_full; _ } ] -> ()
  | _ -> Alcotest.fail "wanted a queue_full error reply for r2");
  let o' = submit_line t {|{"v":1,"id":"s","op":"stats"}|} in
  Alcotest.(check (list string))
    "r1 still flushes at the barrier" [ "r1"; "s" ]
    (List.map reply_id o'.Server.replies);
  match List.rev o'.Server.replies with
  | Protocol.Ok_reply { payload = Json.Obj fields; _ } :: _ ->
      check "stats counts the rejection" true
        (List.assoc_opt "rejected" fields = Some (Json.Int 1))
  | _ -> Alcotest.fail "stats reply missing"

let test_error_reply_for_bad_line () =
  let t = Server.create () in
  let o = submit_line t {|{"v":1,"id":"q","op":"run","exp":"e99"}|} in
  match o.Server.replies with
  | [ Protocol.Error_reply { code = Protocol.Unknown_experiment; id = Some "q"; _ } ]
    ->
      check "bad line never stops the server" false o.Server.stop
  | _ -> Alcotest.fail "wanted unknown_experiment"

let test_stats_payload_keys () =
  let t = Server.create () in
  match Server.stats_payload t with
  | Json.Obj fields ->
      Alcotest.(check (list string))
        "exactly the documented stats keys"
        [
          "completed";
          "errors";
          "p50_ms";
          "p99_ms";
          "queue_capacity";
          "queue_peak";
          "rejected";
          "trace_dropped";
          "uptime_ms";
        ]
        (List.sort compare (List.map fst fields))
  | _ -> Alcotest.fail "stats payload must be an object"

let test_shutdown_stops () =
  let t = Server.create () in
  ignore (submit_line t (run_line "r1" "e2"));
  let o = submit_line t {|{"v":1,"id":"z","op":"shutdown"}|} in
  check "stop" true o.Server.stop;
  Alcotest.(check (list string))
    "drains before stopping" [ "r1"; "z" ]
    (List.map reply_id o.Server.replies)

(* ------------------------------------------------- protocol v2: metrics *)

let test_metrics_gated_by_version () =
  (* The op exists only at v2: a v1 request naming it draws unknown_op
     (not unsupported_version — v1 itself is fine). *)
  ignore
    (expect_decode_error ~code:Protocol.Unknown_op
       {|{"v":1,"id":"m","op":"metrics"}|});
  match Protocol.parse_line {|{"v":2,"id":"m","op":"metrics"}|} with
  | Ok { Protocol.v; id = "m"; op = Protocol.Metrics } ->
      check_int "decoded at v2" Protocol.metrics_version v
  | Ok _ -> Alcotest.fail "decoded to the wrong request"
  | Error { Protocol.message; _ } ->
      Alcotest.failf "v2 metrics rejected: %s" message

let test_reply_echoes_request_version () =
  let t = Server.create ~registry:(Obs.Metrics.create_registry ()) () in
  let o1 = submit_line t {|{"v":2,"id":"p","op":"ping"}|} in
  (match o1.Server.replies with
  | [ Protocol.Ok_reply { v = 2; id = "p"; _ } ] -> ()
  | _ -> Alcotest.fail "v2 ping must be answered at v2");
  let o2 = submit_line t {|{"v":1,"id":"q","op":"ping"}|} in
  match o2.Server.replies with
  | [ Protocol.Ok_reply { v = 1; id = "q"; _ } ] -> ()
  | _ -> Alcotest.fail "v1 ping must be answered at v1"

let metric_value payload name =
  match payload with
  | Json.Obj fields -> (
      match List.assoc_opt "metrics" fields with
      | Some (Json.List metrics) ->
          List.find_map
            (function
              | Json.Obj m when List.assoc_opt "name" m = Some (Json.Str name)
                ->
                  List.assoc_opt "value" m
              | _ -> None)
            metrics
      | _ -> None)
  | _ -> None

let test_metrics_barrier_and_accounting () =
  (* A fresh registry per test: the metrics op is a barrier (flushes
     the queued run first), its payload is the oqsc-metrics document,
     and the accounting identity holds in the snapshot it serves. *)
  let registry = Obs.Metrics.create_registry () in
  let t = Server.create ~capacity:8 ~batch:8 ~registry () in
  ignore (submit_line t (run_line "r1" "e2"));
  ignore (submit_line t "{nope");
  let o = submit_line t {|{"v":2,"id":"m","op":"metrics"}|} in
  Alcotest.(check (list string))
    "metrics is a barrier" [ "r1"; "m" ]
    (List.map reply_id o.Server.replies);
  match List.rev o.Server.replies with
  | Protocol.Ok_reply { v = 2; op = "metrics"; payload; _ } :: _ ->
      (match payload with
      | Json.Obj fields ->
          check "kind" true
            (List.assoc_opt "kind" fields = Some (Json.Str "oqsc-metrics"))
      | _ -> Alcotest.fail "metrics payload must be an object");
      let v name =
        match metric_value payload name with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "metric %s missing from the snapshot" name
      in
      check_int "requests: the run and the malformed line" 2
        (v "serve_requests_total");
      check_int "accounting identity" (v "serve_requests_total")
        (v "serve_replies_ok_total"
        + v "serve_replies_error_total"
        + v "serve_rejected_total"
        + v "serve_dropped_total")
  | _ -> Alcotest.fail "wanted a v2 metrics ok reply"

let test_metrics_counts_drops_and_rejections () =
  let registry = Obs.Metrics.create_registry () in
  let t = Server.create ~capacity:1 ~batch:99 ~registry () in
  (* One admitted run whose sink dies, one queue_full rejection, then a
     barrier from a live sink: the snapshot must file one drop and one
     rejection and still balance. *)
  ignore
    (Server.submit_line_routed t
       ~reply:(fun _ -> failwith "gone")
       (run_line "d1" "e2"));
  ignore
    (Server.submit_line_routed t ~reply:(fun _ -> ()) (run_line "d2" "e2"));
  let got = ref None in
  ignore
    (Server.submit_line_routed t
       ~reply:(fun r -> got := Some r)
       {|{"v":2,"id":"m","op":"metrics"}|});
  match !got with
  | Some (Protocol.Ok_reply { payload; _ }) ->
      let v name =
        match metric_value payload name with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.failf "metric %s missing" name
      in
      check_int "one dead-sink drop" 1 (v "serve_dropped_total");
      check_int "one queue_full rejection" 1 (v "serve_rejected_total");
      check_int "identity under drops" (v "serve_requests_total")
        (v "serve_replies_ok_total"
        + v "serve_replies_error_total"
        + v "serve_rejected_total"
        + v "serve_dropped_total")
  | _ -> Alcotest.fail "metrics reply missing"

(* ------------------------------------------------------- request log *)

let with_reqlog f =
  let path = Filename.temp_file "oqsc_reqlog" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let log = Serve.Reqlog.open_log path in
      let t =
        Server.create ~capacity:8 ~batch:8
          ~registry:(Obs.Metrics.create_registry ())
          ~log ()
      in
      f t;
      Serve.Reqlog.close log;
      In_channel.with_open_text path In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> ""))

let test_reqlog_lifecycle_events () =
  let lines =
    with_reqlog (fun t ->
        ignore (submit_line t (run_line "r1" "e2"));
        ignore (submit_line t "{nope");
        ignore (submit_line t {|{"v":1,"id":"p","op":"ping"}|}))
  in
  match Serve.Reqlog.lint lines with
  | Error problems ->
      Alcotest.failf "engine-written log failed lint: %s"
        (String.concat "; " problems)
  | Ok { Serve.Reqlog.lines = n; admitted; rejected; flushed; replied; dropped }
    ->
      check_int "every line counted" (List.length lines) n;
      check_int "one admission" 1 admitted;
      check_int "one rejection (the malformed line)" 1 rejected;
      check_int "one flush event" 1 flushed;
      check_int "run + ping replied" 2 replied;
      check_int "no drops" 0 dropped

let test_reqlog_lint_catches_violations () =
  (* Hand-corrupted logs: a seq gap, and an undocumented key. *)
  let ok =
    {|{"conn":0,"event":"admitted","id":"a","latency_ms":0.0,"op":"run","queue_depth":1,"seq":0,"ts_ms":1.0}|}
  in
  let gap =
    {|{"conn":0,"event":"replied","id":"a","latency_ms":2.0,"op":"run","queue_depth":0,"seq":5,"ts_ms":2.0}|}
  in
  let extra =
    {|{"conn":0,"event":"replied","extra":1,"id":"a","latency_ms":2.0,"op":"run","queue_depth":0,"seq":1,"ts_ms":2.0}|}
  in
  (match Serve.Reqlog.lint [ ok; gap ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "seq gap must fail lint");
  (match Serve.Reqlog.lint [ ok; extra ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undocumented key must fail lint");
  match Serve.Reqlog.lint [ ok ] with
  | Ok { Serve.Reqlog.admitted = 1; _ } -> ()
  | _ -> Alcotest.fail "well-formed line must pass lint"

(* ----------------------------------------------- golden byte-identity *)

(* The contract CI re-checks against the real binaries: a served payload,
   after the full wire round trip (compact encode, strict decode),
   pretty-prints to the exact bytes of the one-shot CLI document. *)
let served_payload t line =
  let { Server.replies; _ } = submit_line t line in
  let o = submit_line t {|{"v":1,"id":"flush","op":"ping"}|} in
  match
    List.find_map
      (function
        | Protocol.Ok_reply { op = ("run" | "sweep"); _ } as r -> Some r
        | _ -> None)
      (replies @ o.Server.replies)
  with
  | None -> Alcotest.fail "no run/sweep reply"
  | Some reply -> (
      match decode_reply (encode_reply reply) with
      | Protocol.Ok_reply { payload; _ } -> Json.to_string payload
      | Protocol.Error_reply _ -> Alcotest.fail "round trip demoted the reply")

let test_run_payload_matches_oneshot () =
  let t = Server.create () in
  List.iter
    (fun (exp, seed) ->
      check_str
        (Printf.sprintf "served %s seed %d = run-all --only %s" exp seed exp)
        (Json.to_string (Experiments.Registry.document ~quick:true ~seed exp))
        (served_payload t (run_line ~seed "g" exp)))
    [ ("e2", 2006); ("e13", 7) ]

let test_sweep_payload_matches_oneshot () =
  let t = Server.create () in
  let shard = (0, 5) and seed = 2006 in
  let rows = Experiments.Space_audit.rows ~quick:true ~shard ~seed () in
  check_str "served sweep = space-audit --shard 0/5"
    (Json.to_string
       (Experiments.Space_audit.shard_to_json ~shard ~seed ~quick:true rows))
    (served_payload t {|{"v":1,"id":"g","op":"sweep","index":0,"of":5,"quick":true}|})

(* ------------------------------------------------------- bench-serve *)

let mix =
  [
    {|{"v":1,"id":"a","op":"ping"}|};
    run_line "b" "e2";
    {|{"v":1,"id":"c","op":"sweep","index":0,"of":5,"quick":true}|};
    {|{"v":1,"id":"d","op":"run","exp":"e99"}|};
  ]

let test_bench_replay_counts () =
  match Serve.Bench_serve.replay_in_process ~repeat:2 ~capacity:8 ~batch:2 mix with
  | Error msg -> Alcotest.failf "replay failed: %s" msg
  | Ok r ->
      check_int "requests" 8 r.Serve.Bench_serve.requests;
      check_int "replies" 8 r.Serve.Bench_serve.replies;
      check_int "ok" 6 r.Serve.Bench_serve.ok;
      check_int "errors" 2 r.Serve.Bench_serve.errors;
      check "stats payload captured" true
        (match r.Serve.Bench_serve.stats with
        | Json.Obj fields -> List.mem_assoc "p99_ms" fields
        | _ -> false)

let test_bench_rejects_shutdown_in_mix () =
  match
    Serve.Bench_serve.replay_in_process [ {|{"v":1,"id":"z","op":"shutdown"}|} ]
  with
  | Error msg ->
      check "message points at --shutdown" true
        (String.length msg > 0
        &&
        let nh = String.length msg and sub = "shutdown" in
        let nn = String.length sub in
        let rec at i = i + nn <= nh && (String.sub msg i nn = sub || at (i + 1)) in
        at 0)
  | Ok _ -> Alcotest.fail "mixes containing shutdown must be rejected"

let test_bench_rejects_reserved_ids () =
  match
    Serve.Bench_serve.replay_in_process [ {|{"v":1,"id":"bench.x","op":"ping"}|} ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bench.* ids are reserved"

(* ----------------------------------------------- stats regressions *)

let stats_field t key =
  match Server.stats_payload t with
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> Alcotest.fail "stats payload must be an object"

let test_percentile_degenerate () =
  (* Regression for the polymorphic-compare sort: percentiles over the
     empty and single-element latency sets must be exact, not whatever
     Stdlib.compare makes of a float array. *)
  let t = Server.create () in
  check "empty p50 = 0" true (stats_field t "p50_ms" = Some (Json.Float 0.0));
  check "empty p99 = 0" true (stats_field t "p99_ms" = Some (Json.Float 0.0));
  ignore (submit_line t (run_line "one" "e2"));
  ignore (submit_line t {|{"v":1,"id":"p","op":"ping"}|});
  check_int "one latency recorded" 1 (Server.recorded_latencies t);
  let f key =
    match stats_field t key with Some (Json.Float v) -> v | _ -> Float.nan
  in
  let p50 = f "p50_ms" and p99 = f "p99_ms" in
  check "single-element p50 = p99" true (Float.equal p50 p99);
  check "single-element percentile is the sample" true
    (Float.is_finite p50 && p50 >= 0.0)

let test_stats_window_bounded () =
  (* Drive the engine 10x past its latency window: the ring must stay
     at exactly [stats_window] entries while [completed] keeps
     counting.  This is the bounded-memory contract behind long-lived
     servers. *)
  let t = Server.create ~capacity:64 ~batch:4 ~stats_window:4 ~domains:2 () in
  check_int "window as configured" 4 (Server.stats_window t);
  for i = 1 to 40 do
    ignore (submit_line t (run_line (Printf.sprintf "m%d" i) "e2"))
  done;
  ignore (submit_line t {|{"v":1,"id":"p","op":"ping"}|});
  check_int "ring never grows past the window" 4 (Server.recorded_latencies t);
  check "completed counts all 40" true
    (stats_field t "completed" = Some (Json.Int 40));
  (match Server.create ~stats_window:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stats_window 0 should raise")

let test_rejected_errors_disjoint () =
  (* queue_full is backpressure, not an error: it must bump [rejected]
     only, while [errors] counts only non-backpressure error replies. *)
  let t = Server.create ~capacity:1 ~batch:4 () in
  ignore (submit_line t (run_line "r1" "e2"));
  ignore (submit_line t (run_line "r2" "e2"));
  ignore (submit_line t "{nope");
  ignore (submit_line t {|{"v":1,"id":"p","op":"ping"}|});
  check "rejected counts only backpressure" true
    (stats_field t "rejected" = Some (Json.Int 1));
  check "errors counts only the parse failure" true
    (stats_field t "errors" = Some (Json.Int 1))

(* ------------------------------------------------- routed interface *)

let test_routed_reply_ownership () =
  (* Two virtual connections share one engine; a barrier on B flushes
     A's queued run, and the run reply must land on A's sink. *)
  let t = Server.create ~capacity:8 ~batch:8 ~domains:2 () in
  let a = ref [] and b = ref [] in
  let sink cell reply = cell := reply :: !cell in
  check "run admitted silently" false
    (Server.submit_line_routed t ~reply:(sink a) (run_line "a1" "e2"));
  check "barrier does not stop" false
    (Server.submit_line_routed t ~reply:(sink b) {|{"v":1,"id":"b1","op":"ping"}|});
  Alcotest.(check (list string))
    "A got exactly its own run reply" [ "a1" ]
    (List.rev_map reply_id !a);
  Alcotest.(check (list string))
    "B got exactly its own barrier reply" [ "b1" ]
    (List.rev_map reply_id !b);
  check "shutdown stops" true
    (Server.submit_line_routed t ~reply:(sink b) {|{"v":1,"id":"z","op":"shutdown"}|})

let test_routed_dead_sink_dropped () =
  (* A sink that raises is a dead connection: its replies are dropped
     and the flush still delivers everyone else's. *)
  let t = Server.create ~capacity:8 ~batch:8 ~domains:2 () in
  let live = ref [] in
  ignore (Server.submit_line_routed t ~reply:(fun _ -> failwith "gone") (run_line "d1" "e2"));
  ignore (Server.submit_line_routed t ~reply:(fun r -> live := r :: !live) (run_line "l1" "e13"));
  Server.flush_routed t;
  Alcotest.(check (list string))
    "live sink still served" [ "l1" ]
    (List.rev_map reply_id !live);
  check "both runs completed" true (stats_field t "completed" = Some (Json.Int 2))

let cheap_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun seed -> Protocol.Run { exp = "e2"; quick = true; seed }) (int_bound 4));
        (2, map (fun seed -> Protocol.Run { exp = "e13"; quick = true; seed }) (int_bound 2));
        (1, return (Protocol.Sweep { index = 0; count = 5; quick = true; seed = 2006 }));
      ])

let interleaving_gen =
  QCheck.Gen.(list_size (int_range 1 6) (pair (int_bound 2) cheap_op_gen))

let prop_interleaving_multiset =
  (* Any interleaving of admitted requests across connections yields
     the same multiset of (id, payload bytes) as a sequential replay,
     and each connection's sink receives exactly its own ids. *)
  QCheck.Test.make ~count:12
    ~name:"routed interleavings: sequential payload multiset, own-sink routing"
    (QCheck.make
       ~print:(fun ops ->
         String.concat "; "
           (List.map
              (fun (c, op) ->
                Printf.sprintf "c%d:%s" c
                  (match op with
                  | Protocol.Run { exp; seed; _ } -> Printf.sprintf "run %s/%d" exp seed
                  | Protocol.Sweep { index; count; _ } ->
                      Printf.sprintf "sweep %d/%d" index count
                  | _ -> "ctl"))
              ops))
       interleaving_gen)
    (fun ops ->
      let reqs =
        List.mapi
          (fun i (client, op) ->
            ( client,
              { Protocol.v = Protocol.version;
                id = Printf.sprintf "q%d" i;
                op;
              } ))
          ops
      in
      let seq_engine = Server.create ~capacity:16 ~batch:3 ~domains:2 () in
      (* bind before appending: [@] evaluates right-to-left, which would
         run [finish] before the submissions *)
      let flushed =
        List.concat_map (fun (_, req) -> (Server.submit seq_engine req).Server.replies) reqs
      in
      let seq_replies = flushed @ Server.finish seq_engine in
      let routed = Server.create ~capacity:16 ~batch:3 ~domains:2 () in
      let sinks = Array.make 3 [] in
      List.iter
        (fun (client, req) ->
          ignore
            (Server.submit_routed routed
               ~reply:(fun r -> sinks.(client) <- r :: sinks.(client))
               req))
        reqs;
      Server.flush_routed routed;
      let key = function
        | Protocol.Ok_reply { id; payload; _ } -> id ^ "|" ^ Json.to_string payload
        | Protocol.Error_reply { id; code; _ } ->
            Option.value ~default:"<null>" id ^ "|err:" ^ Protocol.code_to_string code
      in
      let multiset rs = List.sort compare (List.map key rs) in
      let routed_replies = Array.to_list sinks |> List.concat_map List.rev in
      let ids_of client =
        List.filter_map
          (fun (c, (req : Protocol.request)) ->
            if c = client then Some req.Protocol.id else None)
          reqs
        |> List.sort compare
      in
      let routing_ok =
        List.for_all
          (fun client ->
            List.sort compare (List.map reply_id sinks.(client)) = ids_of client)
          [ 0; 1; 2 ]
      in
      multiset seq_replies = multiset routed_replies && routing_ok)

(* ------------------------------------------- concurrent socket serving *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()
let send c line = Protocol.write_frame c.oc line

let recv c =
  match Protocol.read_frame c.ic with
  | Ok (Some body) -> decode_reply body
  | Ok None -> Alcotest.fail "unexpected EOF from server"
  | Error msg -> Alcotest.failf "framing violation: %s" msg

let expect_eof c =
  match Protocol.read_frame c.ic with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "wanted EOF, got a frame"
  | Error msg -> Alcotest.failf "wanted EOF, got framing error: %s" msg

let drain_to_eof c =
  let rec go () =
    match Protocol.read_frame c.ic with
    | Ok (Some _) -> go ()
    | Ok None | Error _ -> ()
    | exception _ -> ()
  in
  go ()

(* Run [f] against a live socket server on a fresh path.  [f] receives
   a client factory; every client it makes is closed on the way out,
   and a server the test failed to stop is shut down here, so a failing
   assertion cannot hang the suite on [Thread.join]. *)
let with_server ?(capacity = 32) ?(batch = 64) ?max_clients f =
  let t = Server.create ~capacity ~batch ~domains:2 () in
  let path = Filename.temp_file "oqsc_serve_test" ".sock" in
  Sys.remove path;
  let th = Thread.create (fun () -> Server.serve_socket ?max_clients t path) () in
  let rec wait n =
    if n <= 0 then Alcotest.fail "server socket never appeared"
    else if Sys.file_exists path then ()
    else (
      Thread.delay 0.02;
      wait (n - 1))
  in
  wait 250;
  let clients = ref [] in
  let mk_client () =
    let c = connect path in
    clients := c :: !clients;
    c
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter close_client !clients;
      (if Sys.file_exists path then
         try
           let c = connect path in
           send c {|{"v":1,"id":"bench.cleanup","op":"shutdown"}|};
           drain_to_eof c;
           close_client c
         with Unix.Unix_error _ | Sys_error _ -> ());
      Thread.join th)
    (fun () -> f t mk_client path)

let test_socket_concurrent_ordering () =
  (* Three clients interleave runs and barriers on one engine; each
     connection's replies must arrive in exactly its own send order,
     and a shutdown from one client ends service for all of them. *)
  let path =
    with_server (fun _t mk_client path ->
        let clients = Array.init 3 (fun _ -> mk_client ()) in
        Array.iteri
          (fun i c ->
            send c (run_line (Printf.sprintf "c%d.r1" i) "e2");
            send c (run_line (Printf.sprintf "c%d.r2" i) "e13");
            send c (Printf.sprintf {|{"v":1,"id":"c%d.p","op":"ping"}|} i))
          clients;
        Array.iteri
          (fun i c ->
            let got = List.init 3 (fun _ -> reply_id (recv c)) in
            Alcotest.(check (list string))
              (Printf.sprintf "client %d 's replies in its send order" i)
              [
                Printf.sprintf "c%d.r1" i;
                Printf.sprintf "c%d.r2" i;
                Printf.sprintf "c%d.p" i;
              ]
              got)
          clients;
        send clients.(0) {|{"v":1,"id":"z","op":"shutdown"}|};
        check_str "shutdown answered" "z" (reply_id (recv clients.(0)));
        Array.iter expect_eof clients;
        Array.iter close_client clients;
        path)
  in
  check "socket file removed after shutdown" false (Sys.file_exists path)

let test_socket_overload_queue_full () =
  (* capacity 1, batch > capacity: only barriers drain the queue, so
     two clients racing three runs each must see explicit queue_full
     backpressure — and the stats must file it under [rejected], never
     [errors]. *)
  with_server ~capacity:1 ~batch:99 (fun _t mk_client _path ->
      let clients = Array.init 2 (fun _ -> mk_client ()) in
      Array.iteri
        (fun i c ->
          for j = 1 to 3 do
            send c (run_line (Printf.sprintf "c%d.r%d" i j) "e2")
          done;
          send c (Printf.sprintf {|{"v":1,"id":"c%d.p","op":"ping"}|} i))
        clients;
      let ok = ref 0 and rejected = ref 0 in
      Array.iter
        (fun c ->
          for _ = 1 to 4 do
            match recv c with
            | Protocol.Ok_reply { op = "ping"; _ } -> ()
            | Protocol.Ok_reply { op = "run"; _ } -> incr ok
            | Protocol.Ok_reply { op; _ } -> Alcotest.failf "unexpected ok op %s" op
            | Protocol.Error_reply { code = Protocol.Queue_full; _ } -> incr rejected
            | Protocol.Error_reply { message; _ } ->
                Alcotest.failf "unexpected error reply: %s" message
          done)
        clients;
      check_int "every run answered exactly once" 6 (!ok + !rejected);
      check "overload rejected most runs" true (!rejected >= 3);
      check "at least one run admitted" true (!ok >= 1);
      let c = clients.(0) in
      send c {|{"v":1,"id":"s","op":"stats"}|};
      (match recv c with
      | Protocol.Ok_reply { op = "stats"; payload = Json.Obj fields; _ } ->
          check "wire stats: rejected = observed backpressure" true
            (List.assoc_opt "rejected" fields = Some (Json.Int !rejected));
          check "wire stats: queue_full never counts as an error" true
            (List.assoc_opt "errors" fields = Some (Json.Int 0))
      | _ -> Alcotest.fail "wanted a stats reply");
      send c {|{"v":1,"id":"z","op":"shutdown"}|};
      check_str "shutdown answered" "z" (reply_id (recv c));
      Array.iter expect_eof clients;
      Array.iter close_client clients)

let test_socket_max_clients_slot_wait () =
  (* With one slot, a second connection sits in the listen backlog:
     its frames draw no reply until the first client disconnects. *)
  with_server ~max_clients:1 (fun _t mk_client _path ->
      let c1 = mk_client () in
      send c1 {|{"v":1,"id":"p1","op":"ping"}|};
      check_str "slot holder served" "p1" (reply_id (recv c1));
      let c2 = mk_client () in
      send c2 {|{"v":1,"id":"p2","op":"ping"}|};
      let readable, _, _ = Unix.select [ c2.fd ] [] [] 0.3 in
      check "no reply while the slot is taken" true (readable = []);
      close_client c1;
      check_str "served once the slot frees" "p2" (reply_id (recv c2));
      send c2 {|{"v":1,"id":"z","op":"shutdown"}|};
      check_str "shutdown answered" "z" (reply_id (recv c2));
      expect_eof c2;
      close_client c2)

let test_socket_ghost_disconnect_survives () =
  (* A client that queues work and vanishes without reading a single
     reply makes the server's writer hit a broken pipe when the EOF
     flush tries to deliver.  The process must survive — SIGPIPE is
     ignored and EPIPE is handled as a dead connection — and every
     other client must keep being served.  (Under the default signal
     disposition this test kills the whole test runner.) *)
  with_server (fun _t mk_client _path ->
      let ghost = mk_client () in
      send ghost (run_line "g1" "e2");
      send ghost (run_line "g2" "e13");
      close_client ghost;
      (* Give the ghost's reader its EOF flush so the writer's doomed
         delivery actually happens before we probe the server. *)
      Thread.delay 0.2;
      let c = mk_client () in
      send c {|{"v":1,"id":"p","op":"ping"}|};
      check_str "server alive after ghost disconnect" "p" (reply_id (recv c));
      send c {|{"v":1,"id":"z","op":"shutdown"}|};
      check_str "shutdown answered" "z" (reply_id (recv c));
      expect_eof c;
      close_client c)

let test_bench_socket_concurrent_clients () =
  (* End-to-end: a live socket server under the bench replayer's
     concurrent mode, strict decoding and per-connection ordering
     included. *)
  with_server ~capacity:64 ~batch:8 (fun _t _mk_client path ->
      let mix =
        [
          run_line "x1" "e2";
          run_line "x2" "e13";
          {|{"v":1,"id":"x3","op":"ping"}|};
          run_line "x4" "e2" ~seed:7;
          {|{"v":1,"id":"x5","op":"sweep","index":0,"of":5,"quick":true,"seed":2006}|};
          run_line "x6" "e13" ~seed:1;
        ]
      in
      match
        Serve.Bench_serve.replay_socket ~clients:3 ~repeat:2 ~shutdown:true
          ~socket:path mix
      with
      | Error msg -> Alcotest.failf "concurrent replay failed: %s" msg
      | Ok r ->
          check_int "requests" 12 r.Serve.Bench_serve.requests;
          check_int "replies" 12 r.Serve.Bench_serve.replies;
          check_int "all ok" 12 r.Serve.Bench_serve.ok;
          check_int "no errors" 0 r.Serve.Bench_serve.errors;
          check "server-side stats captured" true
            (match r.Serve.Bench_serve.stats with
            | Json.Obj fields -> List.mem_assoc "p99_ms" fields
            | _ -> false))

let suite =
  [
    ("malformed line -> parse_error, id null", `Quick, test_rejects_malformed);
    ("unknown version -> unsupported_version", `Quick, test_rejects_unknown_version);
    ("unknown op -> unknown_op", `Quick, test_rejects_unknown_op);
    ("unknown experiment -> unknown_experiment", `Quick, test_rejects_unknown_experiment);
    ("shard bounds -> bad_shard", `Quick, test_rejects_bad_shard);
    ("undocumented request key -> bad_request", `Quick, test_rejects_undocumented_request_key);
    ("ill-formed id -> bad_request", `Quick, test_rejects_bad_id);
    ("undocumented reply key / code / version rejected", `Quick, test_rejects_undocumented_reply_key);
    ("frame codec round trip + clean EOF", `Quick, test_frame_roundtrip);
    ("frame violations: oversize, truncation, overlong body", `Quick, test_frame_violations);
    ("bounded queue: FIFO, capacity, peak", `Quick, test_queue_fifo);
    ("batch threshold flushes in admission order", `Quick, test_batch_flush_order);
    ("control requests are flush barriers", `Quick, test_control_barrier);
    ("queue_full backpressure, counted in stats", `Quick, test_queue_full_backpressure);
    ("request errors answer without stopping", `Quick, test_error_reply_for_bad_line);
    ("stats payload carries exactly the documented keys", `Quick, test_stats_payload_keys);
    ("shutdown drains then stops", `Quick, test_shutdown_stops);
    ("queue observe hook sees depth transitions", `Quick, test_queue_observe_hook);
    ("metrics op requires protocol v2", `Quick, test_metrics_gated_by_version);
    ("replies echo the request's version", `Quick, test_reply_echoes_request_version);
    ("metrics is a barrier; accounting identity holds", `Quick, test_metrics_barrier_and_accounting);
    ("metrics counts drops and rejections", `Quick, test_metrics_counts_drops_and_rejections);
    ("request log: engine-written stream passes lint", `Quick, test_reqlog_lifecycle_events);
    ("request log: lint rejects gaps and stray keys", `Quick, test_reqlog_lint_catches_violations);
    ("served run payload = one-shot document (via wire)", `Quick, test_run_payload_matches_oneshot);
    ("served sweep payload = one-shot shard (via wire)", `Quick, test_sweep_payload_matches_oneshot);
    ("bench replay: counts and stats capture", `Quick, test_bench_replay_counts);
    ("bench replay rejects shutdown in a mix", `Quick, test_bench_rejects_shutdown_in_mix);
    ("bench replay rejects reserved bench.* ids", `Quick, test_bench_rejects_reserved_ids);
    ("percentiles over empty / single latency sets", `Quick, test_percentile_degenerate);
    ("latency ring bounded at stats_window under 10x load", `Quick, test_stats_window_bounded);
    ("rejected and errors stats are disjoint", `Quick, test_rejected_errors_disjoint);
    ("routed replies land on the owning sink", `Quick, test_routed_reply_ownership);
    ("a dead sink drops its replies, others delivered", `Quick, test_routed_dead_sink_dropped);
    ("socket: per-connection ordering, shared shutdown", `Quick, test_socket_concurrent_ordering);
    ("socket: overload draws queue_full, counted as rejected", `Quick, test_socket_overload_queue_full);
    ("socket: max-clients gates the accept loop", `Quick, test_socket_max_clients_slot_wait);
    ("socket: disconnect with replies in flight never kills the server", `Quick, test_socket_ghost_disconnect_survives);
    ("bench-serve --clients 3 against a live socket", `Quick, test_bench_socket_concurrent_clients);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_request_roundtrip; prop_reply_roundtrip; prop_interleaving_multiset ]
