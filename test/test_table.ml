(* Tests for the table renderer and the experiment registry plumbing. *)

let check = Alcotest.(check bool)

let render ~title ~header rows =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Experiments.Table.print fmt ~title ~header rows;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_alignment () =
  let out =
    render ~title:"t" ~header:[ "a"; "long-header"; "c" ]
      [ [ "1"; "2"; "3" ]; [ "wide-cell"; "x"; "y" ] ]
  in
  let lines = String.split_on_char '\n' out in
  let data_lines =
    List.filter
      (fun l ->
        String.length l > 0 && (String.length l < 2 || String.sub l 0 2 <> "=="))
      lines
  in
  (* Header and both data rows render at equal width (trailing pad). *)
  match data_lines with
  | header :: _sep :: r1 :: r2 :: _ ->
      check "rows equal width" true
        (String.length r1 = String.length r2 && String.length header = String.length r1)
  | _ -> Alcotest.fail "unexpected table layout"

(* Exact-bytes golden: column widths, two-space gutter, trailing pad,
   title and separator lines.  A renderer change must update this
   deliberately (EXPERIMENTS.md quotes this format verbatim). *)
let test_golden () =
  let out =
    render ~title:"t" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let expected = "\n== t ==\na    bb\n-------\n1    2 \n333  4 \n" in
  Alcotest.(check string) "golden table" expected out

let test_golden_cells () =
  (* The Report cell -> text mapping the table renderer consumes. *)
  Alcotest.(check string) "null" "-" (Experiments.Report.to_text Experiments.Report.null);
  Alcotest.(check string) "bool" "true"
    (Experiments.Report.to_text (Experiments.Report.bool true));
  Alcotest.(check string) "int" "42"
    (Experiments.Report.to_text (Experiments.Report.int 42));
  Alcotest.(check string) "float default" "3.142"
    (Experiments.Report.to_text (Experiments.Report.float 3.14159));
  Alcotest.(check string) "float custom text" "3.14"
    (Experiments.Report.to_text
       (Experiments.Report.float ~text:"3.14" 3.14159));
  Alcotest.(check string) "prob" "0.250"
    (Experiments.Report.to_text (Experiments.Report.prob 0.25))

let test_arity_guard () =
  Alcotest.check_raises "short row rejected"
    (Invalid_argument "Table.print: row arity mismatch") (fun () ->
      ignore (render ~title:"t" ~header:[ "a"; "b" ] [ [ "only-one" ] ]))

let test_formatters () =
  Alcotest.(check string) "float" "3.142" (Experiments.Table.fmt_float 3.14159);
  Alcotest.(check string) "prob" "0.250" (Experiments.Table.fmt_prob 0.25)

let test_registry_unknown_id () =
  check "run raises Not_found" true
    (match Experiments.Registry.run "e99" Format.str_formatter with
    | exception Not_found -> true
    | () -> false)

let test_registry_ids_well_formed () =
  List.iteri
    (fun i id -> check id true (id = Printf.sprintf "e%d" (i + 1)))
    Experiments.Registry.ids

let suite =
  [
    ("alignment", `Quick, test_alignment);
    ("golden render", `Quick, test_golden);
    ("golden cells", `Quick, test_golden_cells);
    ("arity guard", `Quick, test_arity_guard);
    ("formatters", `Quick, test_formatters);
    ("registry unknown id", `Quick, test_registry_unknown_id);
    ("registry id scheme", `Quick, test_registry_ids_well_formed);
  ]
