(* Tests for the Obs.Trace timeline layer and its Chrome trace-event
   export: disabled-path no-ops, span pairing and exception safety,
   bounded buffers, the Parallel and Scope bridges, the determinism
   contract (tracing must never change seeded results), and the
   structural linter CI runs over emitted documents. *)

open Mathx
module T = Obs.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test that starts a session must stop it, pass or fail —
   tracing is process-global and the next test expects it off. *)
let with_session ?capacity f =
  T.start ?capacity ();
  Fun.protect ~finally:(fun () -> if T.enabled () then ignore (T.stop ())) f

let names kind (d : T.dump) =
  List.filter_map
    (fun (e : T.event) -> if e.T.kind = kind then Some e.T.name else None)
    d.T.events

(* ------------------------------------------------------------ disabled *)

let test_disabled_noops () =
  check "tracing is off by default" false (T.enabled ());
  check_int "with_span is transparent when off" 41 (T.with_span "x" (fun () -> 41));
  (* Probes without a session are no-ops, not errors. *)
  T.instant "ignored";
  T.counter "ignored" [ ("v", 1.0) ];
  let d = T.stop () in
  check "stop without a session yields no events" true (d.T.events = []);
  check_int "nothing dropped either" 0 d.T.dropped

(* --------------------------------------------------------------- spans *)

let test_balanced_spans () =
  let d =
    with_session (fun () ->
        T.with_span ~args:[ ("k", T.Int 3) ] "outer" (fun () ->
            T.instant "tick";
            T.with_span "inner" (fun () -> ());
            T.counter "gc" [ ("words", 7.0) ]);
        T.stop ())
  in
  Alcotest.(check (list string))
    "begins in call order" [ "outer"; "inner" ] (names T.Begin d);
  Alcotest.(check (list string))
    "ends in close order" [ "inner"; "outer" ] (names T.End d);
  Alcotest.(check (list string)) "instant recorded" [ "tick" ] (names T.Instant d);
  Alcotest.(check (list string)) "counter recorded" [ "gc" ] (names T.Counter d);
  check "timestamps nondecreasing in dump order" true
    (let rec mono = function
       | (a : T.event) :: (b :: _ as rest) ->
           Int64.compare a.T.ts_ns b.T.ts_ns <= 0 && mono rest
       | _ -> true
     in
     mono d.T.events);
  check "no event predates the session clock zero" true
    (List.for_all
       (fun (e : T.event) -> Int64.compare e.T.ts_ns d.T.t0_ns >= 0)
       d.T.events);
  check "span args survive" true
    (List.exists
       (fun (e : T.event) ->
         e.T.kind = T.Begin && e.T.args = [ ("k", T.Int 3) ])
       d.T.events);
  check_int "no drops" 0 d.T.dropped

let test_span_exception_safe () =
  let d =
    with_session (fun () ->
        (try T.with_span "boom" (fun () -> failwith "boom")
         with Failure _ -> ());
        T.stop ())
  in
  Alcotest.(check (list string)) "begin recorded" [ "boom" ] (names T.Begin d);
  Alcotest.(check (list string))
    "end emitted on the exception path" [ "boom" ] (names T.End d)

let test_capacity_drops () =
  let d =
    with_session ~capacity:8 (fun () ->
        for i = 0 to 19 do
          T.instant ~args:[ ("i", T.Int i) ] "tick"
        done;
        T.stop ())
  in
  check_int "buffer keeps the prefix" 8 (List.length d.T.events);
  check_int "the rest are counted as dropped" 12 d.T.dropped;
  (* Drop-newest: the survivors are the FIRST eight ticks. *)
  check "survivors are the oldest events" true
    (List.for_all2
       (fun (e : T.event) i -> e.T.args = [ ("i", T.Int i) ])
       d.T.events
       [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_sessions_isolated () =
  let first =
    with_session (fun () ->
        T.instant "first-session";
        T.stop ())
  in
  let second =
    with_session (fun () ->
        T.instant "second-session";
        T.stop ())
  in
  Alcotest.(check (list string))
    "first session sees only its event" [ "first-session" ]
    (names T.Instant first);
  Alcotest.(check (list string))
    "a new session starts empty" [ "second-session" ]
    (names T.Instant second)

(* ------------------------------------------------------------- bridges *)

let test_scope_bridge_both_layers () =
  let sink = Obs.create () in
  let d =
    with_session (fun () ->
        Obs.Scope.with_sink sink (fun () ->
            Obs.Scope.with_span "phase" (fun () -> ()));
        T.stop ())
  in
  check_int "gated span counter on the sink" 1 (Obs.count sink "span.phase");
  Alcotest.(check (list string))
    "same call yields a timed slice" [ "phase" ] (names T.Begin d);
  Alcotest.(check (list string)) "which closes" [ "phase" ] (names T.End d)

let test_parallel_chunk_spans_balance () =
  let d =
    with_session (fun () ->
        ignore
          (Parallel.map_chunks ~domains:2 ~chunks:5
             (fun ~chunk ~rng:_ -> chunk)
             ~rng:(Rng.create 3));
        T.stop ())
  in
  let count kind name =
    List.length
      (List.filter (fun n -> n = name) (names kind d))
  in
  check_int "one begin per chunk" 5 (count T.Begin "parallel.map_chunk");
  check_int "one end per chunk" 5 (count T.End "parallel.map_chunk");
  (* domains:2 with 5 chunks always spawns exactly one worker domain,
     whatever the core count — the trace must show its span and its
     track. *)
  check_int "one spawned worker span" 1 (count T.Begin "parallel.worker");
  check_int "which closes" 1 (count T.End "parallel.worker");
  check "events land on at least two tracks" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun (e : T.event) -> e.T.domain) d.T.events))
    >= 2);
  (* Replay each domain's stream: every End must close the innermost
     Begin of the same name on the same track. *)
  let stacks = Hashtbl.create 4 in
  let balanced = ref true in
  List.iter
    (fun (e : T.event) ->
      let stack =
        match Hashtbl.find_opt stacks e.T.domain with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks e.T.domain s;
            s
      in
      match e.T.kind with
      | T.Begin -> stack := e.T.name :: !stack
      | T.End -> (
          match !stack with
          | top :: rest when top = e.T.name -> stack := rest
          | _ -> balanced := false)
      | T.Instant | T.Counter | T.Flow_start | T.Flow_end -> ())
    d.T.events;
  Hashtbl.iter (fun _ s -> if !s <> [] then balanced := false) stacks;
  check "per-domain LIFO pairing holds" true !balanced

(* --------------------------------------------------------- determinism *)

let test_traced_run_identical () =
  let serialize body =
    Experiments.Json.to_string
      (Experiments.Json.of_result
         {
           Experiments.Report.id = "probe";
           description = "";
           seed = 0;
           quick = true;
           wall_ms = 0.0;
           resources = [];
           body;
         })
  in
  let plain = Experiments.E3_recognizer.body ~quick:true ~seed:11 () in
  let traced =
    with_session (fun () ->
        let body = Experiments.E3_recognizer.body ~quick:true ~seed:11 () in
        let d = T.stop () in
        check "the traced run actually recorded kernels" true
          (List.mem "state.gate1" (names T.Begin d));
        body)
  in
  Alcotest.(check string)
    "traced = untraced, byte for byte" (serialize plain) (serialize traced)

let test_registry_gc_telemetry () =
  let d =
    with_session (fun () ->
        ignore (Experiments.Registry.result ~quick:true ~seed:11 "e12");
        T.stop ())
  in
  Alcotest.(check (list string))
    "one gc instant per experiment" [ "gc.experiment" ] (names T.Instant d);
  Alcotest.(check (list string))
    "cumulative gc counter sampled" [ "gc" ] (names T.Counter d);
  check "experiment span present" true
    (List.mem "experiment.e12" (names T.Begin d))

(* ------------------------------------------------------ chrome export *)

let roundtrip dump =
  match Experiments.Json.parse (Experiments.Json.to_string (Experiments.Chrome_trace.document dump)) with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "emitted trace does not re-parse: %s" msg

let test_export_lints_clean () =
  let dump =
    with_session (fun () ->
        ignore (Experiments.Registry.result ~quick:true ~seed:11 "e12");
        T.stop ())
  in
  match Experiments.Chrome_trace.lint (roundtrip dump) with
  | Ok { Experiments.Chrome_trace.events; tracks; max_depth } ->
      check "events counted" true (events > 0);
      check "at least the calling domain's track" true (tracks >= 1);
      check "experiment span gives depth >= 1" true (max_depth >= 1)
  | Error problems ->
      Alcotest.failf "lint rejected a clean trace: %s" (String.concat "; " problems)

let test_export_drops_flagged () =
  let dump =
    with_session ~capacity:4 (fun () ->
        for _ = 1 to 10 do
          T.instant "tick"
        done;
        T.stop ())
  in
  match Experiments.Chrome_trace.lint (roundtrip dump) with
  | Ok _ -> Alcotest.fail "lint accepted a trace with drops"
  | Error problems ->
      check "drop count reported" true
        (List.exists
           (fun p ->
             (* "dropped: 6 event(s) lost to a full buffer" *)
             String.length p >= 7 && String.sub p 0 7 = "dropped")
           problems)

let test_flow_events_roundtrip () =
  (* A flow arrow recorded across two spans exports as paired "s"/"f"
     events sharing a string id, and the exported document lints
     clean. *)
  let dump =
    with_session (fun () ->
        T.with_span "admit" (fun () -> T.flow_start ~id:7 "req");
        T.with_span "dispatch" (fun () -> T.flow_end ~id:7 "req");
        T.stop ())
  in
  Alcotest.(check (list string))
    "flow start recorded" [ "req" ] (names T.Flow_start dump);
  Alcotest.(check (list string))
    "flow end recorded" [ "req" ] (names T.Flow_end dump);
  check "flow ids correlate the two ends" true
    (List.for_all
       (fun (e : T.event) ->
         match e.T.kind with
         | T.Flow_start | T.Flow_end -> e.T.flow = 7
         | _ -> e.T.flow = 0)
       dump.T.events);
  match Experiments.Chrome_trace.lint (roundtrip dump) with
  | Ok { Experiments.Chrome_trace.events; _ } -> check_int "six events" 6 events
  | Error problems ->
      Alcotest.failf "lint rejected a paired flow: %s"
        (String.concat "; " problems)

let test_live_dropped_counter () =
  check_int "dropped reads 0 with tracing off" 0 (T.dropped ());
  with_session ~capacity:4 (fun () ->
      check_int "fresh session starts at 0" 0 (T.dropped ());
      for _ = 1 to 10 do
        T.instant "tick"
      done;
      (* Readable live, without stopping the session — what the serve
         stats reply surfaces. *)
      check_int "live counter matches the overflow" 6 (T.dropped ());
      let d = T.stop () in
      check_int "dump agrees with the live counter" 6 d.T.dropped)

let bad_doc events =
  let open Experiments.Json in
  let ev ph name ts =
    Obj
      [
        ("ph", Str ph); ("name", Str name); ("pid", Int 1); ("tid", Int 0);
        ("ts", Float ts);
      ]
  in
  Obj
    [
      ("kind", Str "oqsc-trace");
      ("version", Int 1);
      ("dropped", Int 0);
      ("traceEvents", List (List.map (fun (ph, name, ts) -> ev ph name ts) events));
    ]

let expect_lint_error what doc =
  match Experiments.Chrome_trace.lint doc with
  | Ok _ -> Alcotest.failf "lint accepted %s" what
  | Error problems -> check (what ^ " produces at least one error") true (problems <> [])

let test_lint_catches_structural_faults () =
  expect_lint_error "an unmatched E"
    (bad_doc [ ("E", "orphan", 1.0) ]);
  expect_lint_error "a never-closed B"
    (bad_doc [ ("B", "open", 1.0) ]);
  expect_lint_error "crossed span names"
    (bad_doc [ ("B", "a", 1.0); ("B", "b", 2.0); ("E", "a", 3.0); ("E", "b", 4.0) ]);
  expect_lint_error "time running backwards on a track"
    (bad_doc [ ("i", "t1", 5.0); ("i", "t2", 4.0) ]);
  expect_lint_error "an unknown phase"
    (bad_doc [ ("X", "weird", 1.0) ]);
  expect_lint_error "an unpaired flow start"
    (let open Experiments.Json in
     let flow ph id ts =
       Obj
         [
           ("ph", Str ph); ("cat", Str "flow"); ("id", Str id);
           ("name", Str "req"); ("pid", Int 1); ("tid", Int 0); ("ts", Float ts);
         ]
     in
     Obj
       [
         ("kind", Str "oqsc-trace");
         ("version", Int 1);
         ("dropped", Int 0);
         ("traceEvents", List [ flow "s" "1" 1.0; flow "s" "2" 2.0; flow "f" "2" 3.0 ]);
       ]);
  expect_lint_error "a foreign document"
    (Experiments.Json.Obj [ ("kind", Experiments.Json.Str "oqsc-results") ]);
  (* Balanced interleaving across DIFFERENT tracks must pass. *)
  let open Experiments.Json in
  let ev ph name tid ts =
    Obj
      [
        ("ph", Str ph); ("name", Str name); ("pid", Int 1); ("tid", Int tid);
        ("ts", Float ts);
      ]
  in
  let doc =
    Obj
      [
        ("kind", Str "oqsc-trace");
        ("version", Int 1);
        ("dropped", Int 0);
        ( "traceEvents",
          List
            [
              ev "B" "a" 0 1.0; ev "B" "b" 1 2.0; ev "E" "a" 0 3.0;
              ev "E" "b" 1 4.0;
            ] );
      ]
  in
  match Experiments.Chrome_trace.lint doc with
  | Ok { Experiments.Chrome_trace.events; tracks; max_depth } ->
      check_int "four events" 4 events;
      check_int "two tracks" 2 tracks;
      check_int "depth one per track" 1 max_depth
  | Error problems ->
      Alcotest.failf "lint rejected cross-track interleaving: %s"
        (String.concat "; " problems)

(* ---------------------------------------------------------- properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"nested spans emit one balanced B/E pair per level"
      ~count:50 (int_range 0 40)
      (fun depth ->
        let d =
          with_session (fun () ->
              let rec nest k = if k > 0 then T.with_span "n" (fun () -> nest (k - 1)) in
              nest depth;
              T.stop ())
        in
        List.length (names T.Begin d) = depth
        && List.length (names T.End d) = depth
        && d.T.dropped = 0);
    Test.make ~name:"exported document always re-parses and lints clean"
      ~count:30
      (small_list (int_range 0 5))
      (fun widths ->
        let d =
          with_session (fun () ->
              List.iteri
                (fun i w ->
                  T.with_span "step" (fun () ->
                      for _ = 1 to w do
                        T.instant ~args:[ ("i", T.Int i) ] "tick"
                      done))
                widths;
              T.stop ())
        in
        match Experiments.Chrome_trace.lint (roundtrip d) with
        | Ok s -> s.Experiments.Chrome_trace.events = List.length d.T.events
        | Error _ -> false);
  ]

let suite =
  [
    ("disabled no-ops", `Quick, test_disabled_noops);
    ("balanced spans", `Quick, test_balanced_spans);
    ("span exception safety", `Quick, test_span_exception_safe);
    ("capacity drops newest", `Quick, test_capacity_drops);
    ("sessions isolated", `Quick, test_sessions_isolated);
    ("scope bridges both layers", `Quick, test_scope_bridge_both_layers);
    ("parallel chunk spans balance", `Quick, test_parallel_chunk_spans_balance);
    ("traced run identical", `Quick, test_traced_run_identical);
    ("registry gc telemetry", `Quick, test_registry_gc_telemetry);
    ("export lints clean", `Quick, test_export_lints_clean);
    ("export flags drops", `Quick, test_export_drops_flagged);
    ("flow arrows export paired and lint clean", `Quick, test_flow_events_roundtrip);
    ("live dropped counter matches the dump", `Quick, test_live_dropped_counter);
    ("lint catches structural faults", `Quick, test_lint_catches_structural_faults);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
