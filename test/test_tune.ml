(* The oqsc-tune profile pipeline: codec round-trip and strictness,
   apply/current symmetry, lint self-consistency, and the load-bearing
   invariant that installing any valid profile leaves gated result
   bytes unchanged. *)

module TD = Experiments.Tune_doc
module Json = Experiments.Json
module S = Quantum.State
module P = Mathx.Parallel

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Run a body with the live scheduling parameters saved and restored,
   so profile experiments cannot leak into other tests. *)
let with_saved_params f =
  let saved = TD.current () in
  Fun.protect ~finally:(fun () -> TD.apply saved) f

(* --------------------------------------------------------- generator *)

(* Valid profiles only; [ns] values are small binary fractions so the
   emitter's shortest-float rendering round-trips them exactly. *)
let profile_gen =
  QCheck.Gen.(
    let entry name =
      pair (int_range 1 (1 lsl 20)) (int_range 1 (1 lsl 14))
      >|= fun (threshold, grain) -> { TD.name; threshold; grain }
    in
    let measurement =
      oneofl TD.kernel_names >>= fun kernel ->
      int_range 1 (1 lsl 20) >>= fun size ->
      oneofl [ TD.Seq; TD.Par ] >>= fun mode ->
      int_range 1 8192 >>= fun m_grain ->
      int_range 0 99_999_999 >|= fun n ->
      { TD.kernel; size; mode; m_grain; ns = float_of_int n /. 16.0 }
    in
    opt (int_range 1 8) >>= fun domains ->
    list_size (int_bound 6) measurement >>= fun telemetry ->
    flatten_l (List.map entry TD.kernel_names) >|= fun kernels ->
    TD.make ~domains ~telemetry kernels)

let arbitrary_profile = QCheck.make profile_gen

let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse (document t) = Ok t"
    arbitrary_profile (fun t -> TD.parse (TD.document t) = Ok t)

let prop_string_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"parse_string (to_string t) = Ok t (through the emitter)"
    arbitrary_profile (fun t -> TD.parse_string (TD.to_string t) = Ok t)

let prop_apply_current =
  QCheck.Test.make ~count:50
    ~name:"current () reflects apply t (telemetry aside)"
    arbitrary_profile (fun t ->
      with_saved_params (fun () ->
          TD.apply t;
          TD.current () = { t with telemetry = [] }))

(* ------------------------------------------------------- strictness *)

(* Mutate the default document field by field and insist the parser
   throws the whole profile out. *)
let base_fields () =
  match TD.document TD.default with
  | Json.Obj fields -> fields
  | _ -> Alcotest.fail "tune document is not an object"

let rejects what doc =
  match TD.parse doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "parser accepted %s" what

let set key v fields = List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields

let patch_kernel f fields =
  set "kernels"
    (match List.assoc "kernels" fields with
    | Json.List (k :: rest) -> Json.List (f k :: rest)
    | _ -> Alcotest.fail "kernels missing")
    fields

let test_rejections () =
  let base = base_fields () in
  rejects "an unknown top-level key" (Json.Obj (("surprise", Json.Int 1) :: base));
  rejects "a bad kind" (Json.Obj (set "kind" (Json.Str "oqsc-tuna") base));
  rejects "an unsupported version" (Json.Obj (set "version" (Json.Int 2) base));
  rejects "domains = 0" (Json.Obj (set "domains" (Json.Int 0) base));
  rejects "a non-list kernels value" (Json.Obj (set "kernels" (Json.Int 3) base));
  rejects "a missing domains key"
    (Json.Obj (List.filter (fun (k, _) -> k <> "domains") base));
  rejects "a missing kernel"
    (Json.Obj
       (set "kernels"
          (match List.assoc "kernels" base with
          | Json.List (_ :: rest) -> Json.List rest
          | _ -> Alcotest.fail "kernels missing")
          base));
  rejects "a duplicated kernel"
    (Json.Obj
       (set "kernels"
          (match List.assoc "kernels" base with
          | Json.List (k :: rest) -> Json.List (k :: k :: rest)
          | _ -> Alcotest.fail "kernels missing")
          base));
  rejects "an unknown kernel name"
    (Json.Obj
       (patch_kernel
          (function
            | Json.Obj kf -> Json.Obj (set "name" (Json.Str "warp") kf)
            | j -> j)
          base));
  rejects "a zero threshold"
    (Json.Obj
       (patch_kernel
          (function
            | Json.Obj kf -> Json.Obj (set "threshold" (Json.Int 0) kf)
            | j -> j)
          base));
  rejects "a negative grain"
    (Json.Obj
       (patch_kernel
          (function
            | Json.Obj kf -> Json.Obj (set "grain" (Json.Int (-4)) kf)
            | j -> j)
          base));
  rejects "an unknown kernel-entry key"
    (Json.Obj
       (patch_kernel
          (function
            | Json.Obj kf -> Json.Obj (("notes", Json.Str "hi") :: kf)
            | j -> j)
          base));
  rejects "a non-object document" (Json.List []);
  (* Telemetry rows are held to the same standard. *)
  let with_rows rows = Json.Obj (base @ [ ("telemetry", Json.List rows) ]) in
  let row extra =
    Json.Obj
      ([
         ("grain", Json.Int 1);
         ("kernel", Json.Str "general");
         ("mode", Json.Str "par");
         ("ns", Json.Float 12.5);
         ("size", Json.Int 4096);
       ]
      |> fun fields -> extra fields)
  in
  (match TD.parse (with_rows [ row Fun.id ]) with
  | Ok t -> check "well-formed telemetry row parses" true (List.length t.TD.telemetry = 1)
  | Error msg -> Alcotest.failf "valid telemetry rejected: %s" msg);
  rejects "a telemetry row with an unknown key"
    (with_rows [ row (fun f -> ("who", Json.Int 1) :: f) ]);
  rejects "a telemetry row with an unknown kernel"
    (with_rows [ row (set "kernel" (Json.Str "warp")) ]);
  rejects "a telemetry row with a bad mode"
    (with_rows [ row (set "mode" (Json.Str "both")) ]);
  rejects "a telemetry row with a negative ns"
    (with_rows [ row (set "ns" (Json.Float (-1.0))) ]);
  rejects "a telemetry row with a zero size"
    (with_rows [ row (set "size" (Json.Int 0)) ])

let test_kernel_names () =
  Alcotest.(check (list string))
    "profile kernel set" [ "diagonal"; "general"; "map_chunks"; "real"; "tlayer" ]
    TD.kernel_names

let test_default_applies () =
  with_saved_params (fun () ->
      TD.apply TD.default;
      check "default profile is the live default" true (TD.current () = TD.default);
      check_str "default document is byte-stable" (TD.to_string TD.default)
        (TD.to_string TD.default))

(* ------------------------------------------------------------- lint *)

let test_lint () =
  (match TD.lint (TD.document TD.default) with
  | Ok r -> check "default lints clean" true (r.TD.kernels = 5 && r.TD.rows = 0)
  | Error ps -> Alcotest.failf "default profile lint: %s" (String.concat "; " ps));
  let measured ~threshold ~grain =
    TD.make
      ~telemetry:
        [
          { TD.kernel = "general"; size = 4096; mode = TD.Seq; m_grain = 1; ns = 100.0 };
          { TD.kernel = "general"; size = 4096; mode = TD.Par; m_grain = 2048; ns = 50.0 };
        ]
      ({ TD.name = "general"; threshold; grain }
      :: List.filter_map
           (fun n ->
             if n = "general" then None
             else Some { TD.name = n; threshold = 4096; grain = 1 })
           TD.kernel_names)
  in
  (match TD.lint (TD.document (measured ~threshold:4096 ~grain:2048)) with
  | Ok _ -> ()
  | Error ps ->
      Alcotest.failf "consistent profile flagged: %s" (String.concat "; " ps));
  (match TD.lint (TD.document (measured ~threshold:8192 ~grain:2048)) with
  | Ok _ -> () (* beyond the whole swept range: the stay-sequential sentinel *)
  | Error ps ->
      Alcotest.failf "sentinel threshold flagged: %s" (String.concat "; " ps));
  check "unmeasured grain is flagged" true
    (Result.is_error (TD.lint (TD.document (measured ~threshold:4096 ~grain:512))));
  check "mid-range unmeasured threshold is flagged" true
    (Result.is_error (TD.lint (TD.document (measured ~threshold:100 ~grain:2048))))

(* ------------------------------------------- byte-invariance (gated) *)

(* The tentpole invariant, in-process: the gated JSON document of a
   (cheap) registry selection must not move by a byte under any loaded
   profile.  Two experiments so the map_chunks runner really has items
   to regroup under its profile-set grain and spawn threshold. *)
let gated_bytes () =
  let results =
    Experiments.Registry.results ~quick:true ~seed:2006 ~only:[ "e2"; "e3" ] ()
  in
  Json.to_string (Json.of_results ~seed:2006 ~quick:true results)

let test_profile_byte_invariance () =
  let baseline = with_saved_params gated_bytes in
  let extremes =
    [
      ("threshold 1 / grain 1 / domains 2",
       TD.make ~domains:(Some 2)
         (List.map (fun n -> { TD.name = n; threshold = 1; grain = 1 }) TD.kernel_names));
      ("huge thresholds",
       TD.make
         (List.map
            (fun n -> { TD.name = n; threshold = 1 lsl 30; grain = 7 })
            TD.kernel_names));
      ("odd grains",
       TD.make
         (List.map (fun n -> { TD.name = n; threshold = 2; grain = 3 }) TD.kernel_names));
    ]
  in
  List.iter
    (fun (label, profile) ->
      let bytes =
        with_saved_params (fun () ->
            TD.apply profile;
            gated_bytes ())
      in
      check_str ("gated bytes unchanged under " ^ label) baseline bytes)
    extremes

let prop_random_profile_byte_invariance =
  (* Same invariant under generator-drawn profiles; a thin count keeps
     runtest quick — the CI tune stage does the full-document cmp. *)
  let baseline = lazy (with_saved_params gated_bytes) in
  QCheck.Test.make ~count:5
    ~name:"gated bytes unchanged under any random valid profile"
    arbitrary_profile (fun t ->
      let bytes =
        with_saved_params (fun () ->
            TD.apply t;
            gated_bytes ())
      in
      String.equal (Lazy.force baseline) bytes)

(* ----------------------------------------------------------- sweep *)

let test_quick_sweep_is_valid () =
  (* One real (quick) sweep end to end: the emitted document must parse
     back, lint clean, and leave the live parameters untouched. *)
  let before = TD.current () in
  let profile = Experiments.Tune.sweep ~quick:true ~seed:11 () in
  check "sweep restores the live parameters" true (TD.current () = before);
  (match TD.parse_string (TD.to_string profile) with
  | Ok t -> check "sweep document round-trips" true (t = profile)
  | Error msg -> Alcotest.failf "sweep document rejected: %s" msg);
  match TD.lint (TD.document profile) with
  | Ok r -> check "sweep telemetry present" true (r.TD.rows > 0)
  | Error ps -> Alcotest.failf "sweep profile lint: %s" (String.concat "; " ps)

let suite =
  [
    ("profile kernel-name set", `Quick, test_kernel_names);
    ("strict parser rejections", `Quick, test_rejections);
    ("default profile applies and round-trips", `Quick, test_default_applies);
    ("lint: schema + self-consistency", `Quick, test_lint);
    ("gated bytes invariant under extreme profiles", `Quick, test_profile_byte_invariance);
    ("quick sweep emits a valid, restoring profile", `Quick, test_quick_sweep_is_valid);
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_roundtrip;
        prop_string_roundtrip;
        prop_apply_current;
        prop_random_profile_byte_invariance;
      ]
