(* Tests for the lib/vm bytecode subsystem: encoders, the two
   interpreters (circuit and register-machine), the disassemblers
   against committed golden listings, the compiled-program cache, and
   the engine hook behind run-all --compiled.

   The load-bearing properties are differential: random circuits must
   execute *bit-identically* (exact float equality on every amplitude)
   under the bytecode interpreter and the gate-IR walker, on both the
   sequential and the forced-chunked parallel scheduling paths; random
   register programs must match Machine.Program.interpret on verdict,
   output, and final registers, including at arbitrary max_steps
   boundaries. *)

open Quantum
open Circuit
open Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ----------------------------------------------------------- helpers *)

let bell = [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]

(* Exact equality, not approx_equal: the contract is bit-identical. *)
let states_identical s1 s2 =
  let d = State.dim s1 in
  State.dim s2 = d
  &&
  let ok = ref true in
  for i = 0 to d - 1 do
    if State.re s1 i <> State.re s2 i || State.im s1 i <> State.im s2 i then
      ok := false
  done;
  !ok

(* Walker vs bytecode from basis state |start>; the engine hook must be
   uninstalled so Circ.run is the IR walker. *)
let paths_agree circ start =
  Vm.Engine.disable ();
  let nq = Circ.nqubits circ in
  let walk = State.basis nq start in
  Circ.run circ walk;
  let vm = State.basis nq start in
  Vm.Qcode.run (Vm.Qcode.compile circ) vm;
  states_identical walk vm

let run_result_equal (a : Program.run_result) (b : Program.run_result) =
  a.Program.verdict = b.Program.verdict
  && a.Program.output = b.Program.output
  && a.Program.final_registers = b.Program.final_registers

let golden_path name = Filename.concat "golden" (name ^ ".disasm")

let read_golden name =
  In_channel.with_open_text (golden_path name) In_channel.input_all

(* The deterministic lowered circuit the committed listing pins: a
   structured probe with every gate class, compiled to {H, T, CNOT}. *)
let lowered_golden_circuit () =
  Lower.to_basis
    (Circ.of_gates ~nqubits:3
       [
         Gate.H 0;
         Gate.T 1;
         Gate.Cz (0, 1);
         Gate.Ccx { c1 = 0; c2 = 1; target = 2 };
         Gate.X 2;
       ])

let machine_gallery =
  [
    ("parity", Program.parity);
    ("run_length_equal", Program.run_length_equal ~width:5);
    ("fingerprint_eq", Program.fingerprint_eq ~p:17 ~t:3);
    ("ldisj_shape", Program.ldisj_shape ~width:7);
    ("beacon", Program.beacon);
  ]

(* ------------------------------------------------------------ encoding *)

let test_qcode_header () =
  let c = Circ.of_gates ~nqubits:2 bell in
  let prog = Vm.Qcode.compile c in
  check_int "nqubits" 2 (Vm.Qcode.nqubits prog);
  check_int "gates" 2 (Vm.Qcode.gates prog);
  (* 8-byte header + H(2) + CNOT(3). *)
  check_int "size" 13 (Vm.Qcode.size prog);
  let b = Vm.Qcode.to_bytes prog in
  check_str "magic" "OQVM" (Bytes.sub_string b 0 4);
  check_int "version" 1 (Bytes.get_uint8 b 4);
  check_int "kind Q" (Char.code 'Q') (Bytes.get_uint8 b 5);
  check_int "header nqubits" 2 (Bytes.get_uint8 b 6)

let test_mcode_header () =
  let prog = Vm.Mcode.compile Program.parity in
  check_str "name" "parity" (Vm.Mcode.name prog);
  check_int "width" 1 (Vm.Mcode.width prog);
  check_int "registers" 2 (Vm.Mcode.registers prog);
  check_int "instructions" 5 (Vm.Mcode.instructions prog);
  let b = Vm.Mcode.to_bytes prog in
  check_str "magic" "OQVM" (Bytes.sub_string b 0 4);
  check_int "kind M" (Char.code 'M') (Bytes.get_uint8 b 5);
  check_int "header width" 1 (Bytes.get_uint8 b 6);
  check_int "header registers" 2 (Bytes.get_uint8 b 7)

let test_fallthrough_elision () =
  (* Goto to the next instruction is 1 byte (flag set); an explicit
     backward Goto costs 3.  Decode the flag straight off the bytes. *)
  let p next =
    {
      Program.name = "fall";
      width = 1;
      registers = 1;
      code = [| Program.Goto next; Program.Accept |];
    }
  in
  let falls = Vm.Mcode.compile (p 1) in
  let backward = Vm.Mcode.compile (p 0) in
  check_int "elided size" (8 + 1 + 1) (Vm.Mcode.size falls);
  check_int "explicit size" (8 + 3 + 1) (Vm.Mcode.size backward);
  check "flag set" true
    (Bytes.get_uint8 (Vm.Mcode.to_bytes falls) 8 land 0x80 <> 0);
  check "flag clear" true
    (Bytes.get_uint8 (Vm.Mcode.to_bytes backward) 8 land 0x80 = 0)

let test_compile_validates () =
  let bad =
    { Program.name = "bad"; width = 1; registers = 1; code = [| Program.Goto 7 |] }
  in
  check "invalid program rejected" true
    (match Vm.Mcode.compile bad with
    | exception Failure _ -> true
    | _ -> false)

let test_qcode_register_mismatch () =
  let prog = Vm.Qcode.compile (Circ.of_gates ~nqubits:2 bell) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Vm.Qcode.run: register size mismatch") (fun () ->
      Vm.Qcode.run prog (State.create 3))

(* ------------------------------------------------- machine semantics *)

let test_mcode_gallery_agrees () =
  let inputs =
    [ ""; "0"; "1"; "#"; "1101"; "000111"; "10#01"; "111#111"; "0101#1010#";
      "1#1#1#"; String.make 40 '1'; "01#10#01#10" ]
  in
  List.iter
    (fun (name, p) ->
      let compiled = Vm.Mcode.compile p in
      List.iter
        (fun input ->
          let reference = Program.interpret p input in
          let got = Vm.Mcode.run compiled input in
          check
            (Printf.sprintf "%s on %S" name input)
            true
            (run_result_equal reference got))
        inputs)
    machine_gallery

let test_mcode_step_cap_exact () =
  (* The verdict must flip from None to Some at exactly the same
     max_steps boundary as the interpreter's. *)
  let p = Program.parity in
  let compiled = Vm.Mcode.compile p in
  for cap = 0 to 12 do
    let reference = Program.interpret ~max_steps:cap p "1101" in
    let got = Vm.Mcode.run ~max_steps:cap compiled "1101" in
    check
      (Printf.sprintf "cap %d" cap)
      true
      (run_result_equal reference got)
  done

let test_mcode_bad_symbol () =
  let compiled = Vm.Mcode.compile Program.parity in
  Alcotest.check_raises "bad symbol"
    (Invalid_argument "Vm.Mcode.run: bad input symbol") (fun () ->
      ignore (Vm.Mcode.run compiled "10x"))

(* --------------------------------------------------------- goldens *)

let test_machine_goldens () =
  List.iter
    (fun (name, p) ->
      check_str
        (Printf.sprintf "golden %s" name)
        (read_golden name)
        (Vm.Mcode.disasm (Vm.Mcode.compile p)))
    machine_gallery

let test_circuit_golden () =
  check_str "golden lowered circuit"
    (read_golden "lowered_circuit")
    (Vm.Qcode.disasm (Vm.Qcode.compile (lowered_golden_circuit ())))

let test_disasm_stable () =
  (* Disassembling twice, or from a recompiled program, is bytewise
     stable — the property the goldens rely on. *)
  List.iter
    (fun (name, p) ->
      let d1 = Vm.Mcode.disasm (Vm.Mcode.compile p) in
      let d2 = Vm.Mcode.disasm (Vm.Mcode.compile p) in
      check_str (Printf.sprintf "stable %s" name) d1 d2)
    machine_gallery;
  let c = lowered_golden_circuit () in
  check_str "stable circuit"
    (Vm.Qcode.disasm (Vm.Qcode.compile c))
    (Vm.Qcode.disasm (Vm.Qcode.compile c))

(* ------------------------------------------------------------- cache *)

let test_cache_context () =
  check "no ambient context" true (Vm.Cache.context () = None);
  Vm.Cache.with_context ~experiment:"e3" ~k:4 ~seed:7 ~variant:"full"
    (fun () ->
      check "installed" true
        (Vm.Cache.context () = Some ("e3", 4, 7, "full")));
  check "restored" true (Vm.Cache.context () = None)

let test_cache_tags () =
  let c1 = Circ.of_gates ~nqubits:1 [ Gate.H 0 ] in
  let c2 = Circ.of_gates ~nqubits:1 [ Gate.T 0 ] in
  check "no context, no tag" true (Vm.Cache.tag_for c1 = None);
  Vm.Cache.with_context ~experiment:"e9" ~seed:11 ~variant:"quick" (fun () ->
      check "first sighting" true
        (Vm.Cache.tag_for c1 = Some "e9/k0/s11/quick/src.1");
      check "second object" true
        (Vm.Cache.tag_for c2 = Some "e9/k0/s11/quick/src.2");
      check "same object, same tag" true
        (Vm.Cache.tag_for c1 = Some "e9/k0/s11/quick/src.1"));
  (* A fresh context restarts the sequence: the tag depends only on the
     deterministic first-sighting order, which is what makes reuse
     across repeated invocations sound. *)
  Vm.Cache.with_context ~experiment:"e9" ~seed:11 ~variant:"quick" (fun () ->
      check "sequence restarts" true
        (Vm.Cache.tag_for c2 = Some "e9/k0/s11/quick/src.1"))

let test_cache_hit_miss_counters () =
  Vm.Engine.reset ();
  let c = Circ.of_gates ~nqubits:2 bell in
  let exec () = Vm.Qcode.run_cached c (State.create 2) in
  Vm.Cache.with_context ~experiment:"t" ~seed:1 ~variant:"quick" exec;
  check_int "one miss" 1 (Vm.Cache.misses ());
  check_int "no hit yet" 0 (Vm.Cache.hits ());
  Vm.Cache.with_context ~experiment:"t" ~seed:1 ~variant:"quick" exec;
  check_int "still one miss" 1 (Vm.Cache.misses ());
  check_int "one hit" 1 (Vm.Cache.hits ());
  (* Different seed, different key: a miss, not a collision. *)
  Vm.Cache.with_context ~experiment:"t" ~seed:2 ~variant:"quick" exec;
  check_int "second miss" 2 (Vm.Cache.misses ())

let test_cache_bypass () =
  Vm.Engine.reset ();
  Vm.Qcode.run_cached (Circ.of_gates ~nqubits:1 [ Gate.H 0 ]) (State.create 1);
  check_int "bypassed" 1
    (List.assoc "vm.cache.bypass" (Vm.Cache.stats ()));
  check_int "no miss" 0 (Vm.Cache.misses ())

let test_cache_invalidate_on_shape_change () =
  Vm.Engine.reset ();
  let c2 = Circ.of_gates ~nqubits:2 bell in
  let c3 = Circ.of_gates ~nqubits:3 [ Gate.H 2 ] in
  (* Same key (first sighting in equal contexts), different shape: the
     stale entry must be recompiled, not served. *)
  Vm.Cache.with_context ~experiment:"t" ~seed:1 ~variant:"full" (fun () ->
      Vm.Qcode.run_cached c2 (State.create 2));
  Vm.Cache.with_context ~experiment:"t" ~seed:1 ~variant:"full" (fun () ->
      Vm.Qcode.run_cached c3 (State.create 3));
  check_int "invalidated" 1
    (List.assoc "vm.cache.invalidate" (Vm.Cache.stats ()))

let test_cache_hit_executes_identically () =
  (* Regression: a cache hit must execute exactly like a fresh compile
     (and like the walker). *)
  Vm.Engine.reset ();
  let circ =
    Lower.to_basis
      (Circ.of_gates ~nqubits:3
         [ Gate.H 0; Gate.Ccx { c1 = 0; c2 = 1; target = 2 }; Gate.T 2 ])
  in
  let nq = Circ.nqubits circ in
  let run_cached () =
    let s = State.create nq in
    Vm.Cache.with_context ~experiment:"reg" ~seed:3 ~variant:"quick" (fun () ->
        Vm.Qcode.run_cached circ s);
    s
  in
  let miss = run_cached () in
  let hit = run_cached () in
  check_int "second run hit" 1 (Vm.Cache.hits ());
  let walk = State.create nq in
  Vm.Engine.disable ();
  Circ.run circ walk;
  check "hit = miss" true (states_identical miss hit);
  check "hit = walker" true (states_identical walk hit)

(* ------------------------------------------------------------ engine *)

let test_engine_toggle () =
  Vm.Engine.disable ();
  check "off" false (Vm.Engine.enabled ());
  Vm.Engine.enable ();
  check "on" true (Vm.Engine.enabled ());
  Vm.Engine.enable ();
  check "idempotent" true (Vm.Engine.enabled ());
  Vm.Engine.disable ();
  check "off again" false (Vm.Engine.enabled ())

let test_engine_env () =
  let set v = Unix.putenv "OQSC_COMPILED" v in
  Fun.protect
    ~finally:(fun () ->
      set "";
      Vm.Engine.disable ())
    (fun () ->
      set "";
      check "empty off" false (Vm.Engine.env_requested ());
      set "0";
      check "0 off" false (Vm.Engine.env_requested ());
      set "false";
      check "false off" false (Vm.Engine.env_requested ());
      set "1";
      check "1 on" true (Vm.Engine.env_requested ());
      set "yes";
      check "yes on" true (Vm.Engine.env_requested ());
      Vm.Engine.disable ();
      set "0";
      Vm.Engine.init_from_env ();
      check "init honours off" false (Vm.Engine.enabled ());
      set "1";
      Vm.Engine.init_from_env ();
      check "init honours on" true (Vm.Engine.enabled ()))

let test_engine_routes_circ_run () =
  Vm.Engine.reset ();
  let circ = Circ.of_gates ~nqubits:2 bell in
  let walk = State.create 2 in
  Vm.Engine.disable ();
  Circ.run circ walk;
  let routed = State.create 2 in
  Vm.Engine.enable ();
  Fun.protect ~finally:Vm.Engine.disable (fun () -> Circ.run circ routed);
  (* No context installed: the engine still runs (bypassing the store)
     and must be bit-identical. *)
  check "bypass counted" true
    (List.assoc "vm.cache.bypass" (Vm.Cache.stats ()) >= 1);
  check "routed = walker" true (states_identical walk routed)

let test_registry_reuse_across_invocations () =
  (* The satellite contract: repeated run-all --only style invocations
     in one process reuse compiled programs (hits, no growth in misses)
     and produce identical reports — with the engine result also equal
     to the walker's. *)
  let walker = Experiments.Registry.result ~quick:true ~seed:2006 "e11" in
  Vm.Engine.reset ();
  Vm.Engine.enable ();
  Fun.protect ~finally:Vm.Engine.disable (fun () ->
      let r1 = Experiments.Registry.result ~quick:true ~seed:2006 "e11" in
      let misses_after_first = Vm.Cache.misses () in
      let hits_after_first = Vm.Cache.hits () in
      let r2 = Experiments.Registry.result ~quick:true ~seed:2006 "e11" in
      check "compiled something" true (misses_after_first > 0);
      check "second invocation only hits" true
        (Vm.Cache.misses () = misses_after_first);
      check "second invocation hit the store" true
        (Vm.Cache.hits () > hits_after_first);
      check "reports identical across invocations" true
        (r1.Experiments.Report.body = r2.Experiments.Report.body
        && r1.Experiments.Report.resources = r2.Experiments.Report.resources);
      check "engine report = walker report" true
        (walker.Experiments.Report.body = r1.Experiments.Report.body
        && walker.Experiments.Report.resources
           = r1.Experiments.Report.resources))

(* ------------------------------------------------- differential qcheck *)

let gate_gen nq =
  let open QCheck.Gen in
  let q = int_range 0 (nq - 1) in
  let rot b i = (b + i) mod nq in
  let g1 =
    oneof
      [
        map (fun q -> Gate.H q) q;
        map (fun q -> Gate.T q) q;
        map (fun q -> Gate.Tdg q) q;
        map (fun q -> Gate.S q) q;
        map (fun q -> Gate.Sdg q) q;
        map (fun q -> Gate.X q) q;
        map (fun q -> Gate.Z q) q;
      ]
  in
  let g2 =
    oneof
      [
        map (fun b -> Gate.Cnot { control = rot b 0; target = rot b 1 }) q;
        map (fun b -> Gate.Cz (rot b 0, rot b 1)) q;
      ]
  in
  let g3 =
    oneof
      [
        map (fun b -> Gate.Ccx { c1 = rot b 0; c2 = rot b 1; target = rot b 2 }) q;
        map (fun b -> Gate.Mcz [ rot b 0; rot b 1; rot b 2 ]) q;
      ]
  in
  let gmcx =
    map
      (fun b ->
        Gate.Mcx { controls = [ rot b 0; rot b 1; rot b 2 ]; target = rot b 3 })
      q
  in
  if nq >= 4 then frequency [ (6, g1); (4, g2); (2, g3); (1, gmcx) ]
  else frequency [ (6, g1); (4, g2); (2, g3) ]

let circuit_case ~max_qubits =
  let open QCheck in
  let gen =
    Gen.(
      int_range 3 max_qubits >>= fun nq ->
      list_size (int_range 1 25) (gate_gen nq) >>= fun gs ->
      int_bound ((1 lsl nq) - 1) >>= fun start -> return (nq, gs, start))
  in
  let print (nq, gs, start) =
    Format.asprintf "@[<v>nq=%d start=|%d>@,%a@]" nq start
      (Format.pp_print_list Gate.pp)
      gs
  in
  make ~print gen

let instr_gen n registers width =
  let open QCheck.Gen in
  let t = int_bound (n - 1) in
  let r = int_bound (registers - 1) in
  frequency
    [
      ( 3,
        map
          (fun ((a, b), (c, d)) ->
            Program.Read { on_zero = a; on_one = b; on_hash = c; on_eof = d })
          (pair (pair t t) (pair t t)) );
      (2, map (fun (reg, next) -> Program.Inc { reg; next }) (pair r t));
      (1, map (fun (reg, next) -> Program.Reset { reg; next }) (pair r t));
      ( 1,
        map
          (fun ((reg, value), next) -> Program.Set { reg; value; next })
          (pair (pair r (int_bound ((1 lsl width) - 1))) t) );
      ( 1,
        map
          (fun ((dst, src), next) -> Program.Add { dst; src; next })
          (pair (pair r r) t) );
      ( 1,
        map
          (fun ((dst, src), next) -> Program.Sub { dst; src; next })
          (pair (pair r r) t) );
      ( 2,
        map
          (fun ((reg_a, reg_b), (if_eq, if_ne)) ->
            Program.Jump_if_eq { reg_a; reg_b; if_eq; if_ne })
          (pair (pair r r) (pair t t)) );
      ( 2,
        map
          (fun ((reg_a, reg_b), (if_lt, if_ge)) ->
            Program.Jump_if_lt { reg_a; reg_b; if_lt; if_ge })
          (pair (pair r r) (pair t t)) );
      ( 1,
        map
          (fun (reg, (if_max, if_not)) ->
            Program.Jump_if_max { reg; if_max; if_not })
          (pair r (pair t t)) );
      ( 1,
        map
          (fun (symbol, next) -> Program.Emit { symbol; next })
          (pair (oneofl [ 'a'; 'b'; '!' ]) t) );
      (1, map (fun tgt -> Program.Goto tgt) t);
      (1, return Program.Accept);
      (1, return Program.Reject);
    ]

let program_case =
  let open QCheck in
  let gen =
    Gen.(
      int_range 2 12 >>= fun n ->
      int_range 1 4 >>= fun registers ->
      int_range 1 6 >>= fun width ->
      array_size (return n) (instr_gen n registers width) >>= fun code ->
      string_size ~gen:(oneofl [ '0'; '1'; '#' ]) (int_range 0 25)
      >>= fun input ->
      int_range 0 200 >>= fun cap ->
      return ({ Program.name = "rand"; width; registers; code }, input, cap))
  in
  let print (p, input, cap) =
    Format.asprintf "width=%d regs=%d cap=%d input=%S code=[%s]"
      p.Program.width p.Program.registers cap input
      (String.concat "; "
         (Array.to_list
            (Array.map
               (fun (i : Program.instr) ->
                 match i with
                 | Program.Read _ -> "read"
                 | Program.Inc _ -> "inc"
                 | Program.Reset _ -> "clr"
                 | Program.Set _ -> "ldi"
                 | Program.Add _ -> "add"
                 | Program.Sub _ -> "sub"
                 | Program.Jump_if_eq _ -> "jeq"
                 | Program.Jump_if_lt _ -> "jlt"
                 | Program.Jump_if_max _ -> "jmax"
                 | Program.Emit _ -> "emit"
                 | Program.Goto _ -> "jmp"
                 | Program.Accept -> "acc"
                 | Program.Reject -> "rej")
               p.Program.code)))
  in
  make ~print gen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"bytecode = walker on random structured circuits"
      ~count:120 (circuit_case ~max_qubits:5) (fun (nq, gs, start) ->
        paths_agree (Circ.of_gates ~nqubits:nq gs) start);
    Test.make ~name:"bytecode = walker on random lowered circuits (<= 8 qubits)"
      ~count:60 (circuit_case ~max_qubits:4) (fun (nq, gs, start) ->
        let lowered = Lower.to_basis (Circ.of_gates ~nqubits:nq gs) in
        assume (Circ.nqubits lowered <= 8);
        Circ.is_basis_only lowered && paths_agree lowered start);
    Test.make ~name:"bytecode = walker on the forced-parallel path" ~count:60
      (circuit_case ~max_qubits:5) (fun (nq, gs, start) ->
        let saved = State.parallel_threshold () in
        State.set_parallel_threshold 0;
        Fun.protect
          ~finally:(fun () -> State.set_parallel_threshold saved)
          (fun () -> paths_agree (Circ.of_gates ~nqubits:nq gs) start));
    (* Each generated circuit gets its own context key: the cache's
       soundness precondition is one deterministic circuit stream per
       (experiment, k, seed, variant), which unrelated random circuits
       sharing a key would violate. *)
    (let case = ref 0 in
     Test.make ~name:"cached engine = walker on random circuits" ~count:60
       (circuit_case ~max_qubits:5) (fun (nq, gs, start) ->
         incr case;
         let circ = Circ.of_gates ~nqubits:nq gs in
         Vm.Engine.disable ();
         let walk = State.basis nq start in
         Circ.run circ walk;
         let routed = State.basis nq start in
         Vm.Engine.enable ();
         Fun.protect ~finally:Vm.Engine.disable (fun () ->
             Vm.Cache.with_context ~experiment:"prop" ~seed:!case
               ~variant:"quick" (fun () ->
                 Circ.run circ routed;
                 (* And again through the hit path. *)
                 Circ.run circ (State.basis nq start)));
         states_identical walk routed));
    Test.make ~name:"bytecode machine = interpreter on random programs"
      ~count:200 program_case (fun (p, input, _cap) ->
        let reference = Program.interpret ~max_steps:2000 p input in
        let got = Vm.Mcode.run ~max_steps:2000 (Vm.Mcode.compile p) input in
        run_result_equal reference got);
    Test.make ~name:"bytecode machine honours arbitrary step caps" ~count:150
      program_case (fun (p, input, cap) ->
        let reference = Program.interpret ~max_steps:cap p input in
        let got = Vm.Mcode.run ~max_steps:cap (Vm.Mcode.compile p) input in
        run_result_equal reference got);
    Test.make ~name:"machine disassembly is decodable on random programs"
      ~count:100 program_case (fun (p, _, _) ->
        let compiled = Vm.Mcode.compile p in
        let d = Vm.Mcode.disasm compiled in
        (* One listing line per instruction, plus the two-line header. *)
        let lines = String.split_on_char '\n' (String.trim d) in
        List.length lines = Vm.Mcode.instructions compiled + 2);
  ]

let suite =
  [
    ("qcode header", `Quick, test_qcode_header);
    ("mcode header", `Quick, test_mcode_header);
    ("fallthrough elision", `Quick, test_fallthrough_elision);
    ("compile validates", `Quick, test_compile_validates);
    ("qcode register mismatch", `Quick, test_qcode_register_mismatch);
    ("machine gallery agrees", `Quick, test_mcode_gallery_agrees);
    ("step cap exact", `Quick, test_mcode_step_cap_exact);
    ("bad input symbol", `Quick, test_mcode_bad_symbol);
    ("machine goldens", `Quick, test_machine_goldens);
    ("circuit golden", `Quick, test_circuit_golden);
    ("disasm stable", `Quick, test_disasm_stable);
    ("cache context", `Quick, test_cache_context);
    ("cache tags", `Quick, test_cache_tags);
    ("cache hit/miss counters", `Quick, test_cache_hit_miss_counters);
    ("cache bypass", `Quick, test_cache_bypass);
    ("cache invalidate on shape change", `Quick, test_cache_invalidate_on_shape_change);
    ("cache hit executes identically", `Quick, test_cache_hit_executes_identically);
    ("engine toggle", `Quick, test_engine_toggle);
    ("engine env switch", `Quick, test_engine_env);
    ("engine routes Circ.run", `Quick, test_engine_routes_circ_run);
    ("registry reuse across invocations", `Slow, test_registry_reuse_across_invocations);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
